//! Branch-and-bound over the integer variables.

use std::fmt;
use std::time::{Duration, Instant};

use crate::model::{Model, VarType};
use crate::simplex::{solve_lp_with_deadline, LpOutcome};
use crate::{FEAS_TOL, INT_TOL};

/// Options controlling a MILP solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Wall-clock budget. On expiry the best incumbent found so far is
    /// returned with [`SolveStatus::Feasible`] (the paper runs Gurobi with a
    /// 15-minute budget and reports best-effort results the same way).
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: u64,
    /// A known-feasible starting assignment (e.g. from a heuristic). Its
    /// objective becomes the initial cutoff, guaranteeing the result is
    /// never worse than the warm start.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(10),
            node_limit: 2_000_000,
            warm_start: None,
        }
    }
}

/// How a returned solution should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal.
    Optimal,
    /// Feasible incumbent; optimality not proven (budget or node limit hit,
    /// or an LP relaxation stalled numerically).
    Feasible,
}

/// A feasible MILP solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`](crate::VarId). Integer
    /// variables are snapped to exact integers.
    pub values: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
    /// Optimality status.
    pub status: SolveStatus,
    /// Number of branch-and-bound nodes processed.
    pub nodes: u64,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.0]
    }

    /// Value of a binary/integer variable as `i64`.
    pub fn int_value(&self, var: crate::VarId) -> i64 {
        self.values[var.0].round() as i64
    }

    /// Value of a binary variable as `bool`.
    pub fn bool_value(&self, var: crate::VarId) -> bool {
        self.values[var.0].round() as i64 != 0
    }
}

/// Failure modes of a MILP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MilpError {
    /// The model has no feasible assignment.
    Infeasible,
    /// The LP relaxation is unbounded below.
    Unbounded,
    /// The budget expired before any feasible assignment was found.
    NoSolutionFound,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "model is infeasible"),
            MilpError::Unbounded => write!(f, "objective is unbounded below"),
            MilpError::NoSolutionFound => {
                write!(f, "budget expired before a feasible solution was found")
            }
        }
    }
}

impl std::error::Error for MilpError {}

struct Node {
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// LP bound inherited from the parent (for pruning before solving).
    parent_bound: f64,
}

/// Solves `model` to optimality or best effort within the budget.
///
/// # Errors
///
/// - [`MilpError::Infeasible`] if no assignment satisfies the constraints,
/// - [`MilpError::Unbounded`] if the relaxation is unbounded below,
/// - [`MilpError::NoSolutionFound`] if the budget expired with no incumbent.
pub fn solve(model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError> {
    let start = Instant::now();
    // Cheap reductions first: fewer rows shrink every tableau quadratically.
    let reduced = match crate::presolve::presolve(model) {
        crate::presolve::Presolved::Reduced(m) => m,
        crate::presolve::Presolved::Infeasible => return Err(MilpError::Infeasible),
    };
    let model = &reduced;
    let n = model.num_vars();
    let int_vars: Vec<usize> = (0..n)
        .filter(|&j| model.vars[j].vtype == VarType::Integer)
        .collect();

    let root_lb: Vec<f64> = (0..n).map(|j| model.vars[j].lb).collect();
    let root_ub: Vec<f64> = (0..n).map(|j| model.vars[j].ub).collect();

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    if let Some(ws) = &opts.warm_start {
        assert_eq!(ws.len(), n, "warm start has wrong dimension");
        if model.check_feasible(ws, 1e-6).is_ok() {
            let mut vals = ws.clone();
            snap_integers(&mut vals, &int_vars);
            let obj = model.objective_value(&vals);
            incumbent = Some((vals, obj));
        }
    }

    let deadline = start.checked_add(opts.time_limit);
    let mut stack = vec![Node {
        lb: root_lb,
        ub: root_ub,
        parent_bound: f64::NEG_INFINITY,
    }];
    let mut nodes = 0u64;
    let mut exhausted = true; // true when the search tree was fully explored
    let mut any_stall = false;

    while let Some(node) = stack.pop() {
        if nodes >= opts.node_limit
            || start.elapsed() >= opts.time_limit
            || stack.len() > 100_000
        {
            exhausted = false;
            break;
        }
        // Bound-based pruning using the parent's relaxation value.
        if let Some((_, inc_obj)) = &incumbent {
            if node.parent_bound >= *inc_obj - 1e-9 {
                continue;
            }
        }
        nodes += 1;

        let lp = solve_lp_with_deadline(model, &node.lb, &node.ub, deadline);
        let sol = match lp {
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                if nodes == 1 {
                    return Err(MilpError::Unbounded);
                }
                // A child cannot be unbounded if the root was bounded, but
                // guard against numerical surprises: treat as unexplorable.
                any_stall = true;
                continue;
            }
            LpOutcome::Stalled => {
                any_stall = true;
                continue;
            }
            LpOutcome::Optimal(s) => s,
        };

        if let Some((_, inc_obj)) = &incumbent {
            if sol.objective >= *inc_obj - 1e-9 {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = INT_TOL;
        for &j in &int_vars {
            let v = sol.values[j];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((j, v));
            }
        }

        match branch {
            None => {
                // Integral: candidate incumbent.
                let mut vals = sol.values.clone();
                snap_integers(&mut vals, &int_vars);
                if model.check_feasible(&vals, 1e-5).is_ok() {
                    let obj = model.objective_value(&vals);
                    if incumbent.as_ref().is_none_or(|(_, best)| obj < best - 1e-9) {
                        incumbent = Some((vals, obj));
                    }
                }
            }
            Some((j, v)) => {
                let floor = v.floor();
                // Dive toward the nearer integer first (pushed last).
                let mut down = Node {
                    lb: node.lb.clone(),
                    ub: node.ub.clone(),
                    parent_bound: sol.objective,
                };
                down.ub[j] = floor;
                let mut up = Node {
                    lb: node.lb,
                    ub: node.ub,
                    parent_bound: sol.objective,
                };
                up.lb[j] = floor + 1.0;
                if v - floor <= 0.5 {
                    stack.push(up);
                    stack.push(down);
                } else {
                    stack.push(down);
                    stack.push(up);
                }
            }
        }
    }

    match incumbent {
        Some((values, objective)) => Ok(Solution {
            values,
            objective,
            status: if exhausted && !any_stall {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            },
            nodes,
        }),
        None => {
            if exhausted && !any_stall {
                Err(MilpError::Infeasible)
            } else {
                Err(MilpError::NoSolutionFound)
            }
        }
    }
}

fn snap_integers(values: &mut [f64], int_vars: &[usize]) {
    for &j in int_vars {
        values[j] = values[j].round();
    }
}

// Feasibility slack reused by tests.
#[allow(dead_code)]
fn feasible(model: &Model, values: &[f64]) -> bool {
    model.check_feasible(values, FEAS_TOL.sqrt()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation};

    fn opts() -> SolveOptions {
        SolveOptions {
            time_limit: Duration::from_secs(30),
            ..SolveOptions::default()
        }
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 13b + 7c  s.t.  4a + 5b + 3c <= 8  (binaries).
        // Optimum: b + c = 20 (weight 8).
        let mut m = Model::new("knap");
        let a = m.binary("a", -10.0);
        let b = m.binary("b", -13.0);
        let c = m.binary("c", -7.0);
        m.constraint([(a, 4.0), (b, 5.0), (c, 3.0)], Relation::Le, 8.0);
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 20.0).abs() < 1e-6);
        assert!(!s.bool_value(a));
        assert!(s.bool_value(b));
        assert!(s.bool_value(c));
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // min y  s.t.  y >= 1.5 x, y >= 3 (1 - x), x binary, y <= 10.
        // x=1 -> y=1.5 ; x=0 -> y=3. LP relaxation would pick x≈0.67.
        let mut m = Model::new("t");
        let x = m.binary("x", 0.0);
        let y = m.continuous("y", 0.0, 10.0, 1.0);
        m.constraint([(y, 1.0), (x, -1.5)], Relation::Ge, 0.0);
        m.constraint([(y, 1.0), (x, 3.0)], Relation::Ge, 3.0);
        let s = solve(&m, &opts()).unwrap();
        assert!(s.bool_value(x));
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 3 with x integer: LP-feasible, IP-infeasible.
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Eq, 3.0);
        assert_eq!(solve(&m, &opts()).unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn warm_start_bounds_the_result() {
        let mut m = Model::new("t");
        let x = m.binary("x", -1.0);
        let y = m.binary("y", -1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        // Feasible warm start: x=1, y=0, obj -1 (also optimal).
        let s = solve(
            &m,
            &SolveOptions {
                warm_start: Some(vec![1.0, 0.0]),
                ..opts()
            },
        )
        .unwrap();
        assert!((s.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_budget_returns_warm_start() {
        let mut m = Model::new("t");
        let x = m.binary("x", -1.0);
        m.constraint([(x, 1.0)], Relation::Le, 1.0);
        let s = solve(
            &m,
            &SolveOptions {
                time_limit: Duration::ZERO,
                warm_start: Some(vec![0.0]),
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.status, SolveStatus::Feasible);
        assert_eq!(s.int_value(x), 0);
    }

    #[test]
    fn zero_time_budget_without_warm_start_fails() {
        let mut m = Model::new("t");
        let _x = m.binary("x", -1.0);
        let err = solve(
            &m,
            &SolveOptions {
                time_limit: Duration::ZERO,
                ..SolveOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MilpError::NoSolutionFound);
    }

    #[test]
    fn big_m_ordering_disjunction() {
        // Two unit jobs on one machine: either A before B or B before A.
        // min end = max completion; optimum 2.
        let mut m = Model::new("seq");
        const M: f64 = 100.0;
        let sa = m.continuous("sa", 0.0, 50.0, 0.0);
        let sb = m.continuous("sb", 0.0, 50.0, 0.0);
        let end = m.continuous("end", 0.0, 100.0, 1.0);
        let k = m.binary("k", 0.0);
        // sb >= sa + 1 - M(1-k)  and  sa >= sb + 1 - Mk
        m.constraint([(sb, 1.0), (sa, -1.0), (k, -M)], Relation::Ge, 1.0 - M);
        m.constraint([(sa, 1.0), (sb, -1.0), (k, M)], Relation::Ge, 1.0);
        m.constraint([(end, 1.0), (sa, -1.0)], Relation::Ge, 1.0);
        m.constraint([(end, 1.0), (sb, -1.0)], Relation::Ge, 1.0);
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-5, "objective {}", s.objective);
    }

    #[test]
    fn general_integers_branch_correctly() {
        // max 3x + 4y  s.t.  2x + 3y <= 12, 2x + y <= 8, x,y int >= 0.
        // LP opt is fractional; IP opt is x=3, y=2 (obj 17).
        let mut m = Model::new("int");
        let x = m.integer("x", 0.0, 10.0, -3.0);
        let y = m.integer("y", 0.0, 10.0, -4.0);
        m.constraint([(x, 2.0), (y, 3.0)], Relation::Le, 12.0);
        m.constraint([(x, 2.0), (y, 1.0)], Relation::Le, 8.0);
        let s = solve(&m, &opts()).unwrap();
        assert!((s.objective + 17.0).abs() < 1e-6, "objective {}", s.objective);
        assert_eq!(s.int_value(x), 3);
        assert_eq!(s.int_value(y), 2);
    }
}
