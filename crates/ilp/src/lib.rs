//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The PathDriver-Wash paper formulates wash optimization as integer linear
//! programs and solves them with Gurobi under a wall-clock budget. No ILP
//! solver exists in this build's offline crate registry, so this crate
//! provides one from scratch:
//!
//! - [`Model`] — variables (continuous/integer/binary with bounds), linear
//!   constraints (`≤`, `≥`, `=`), and a linear objective to *minimize*;
//! - a **bounded-variable two-phase primal simplex** for LP relaxations
//!   ([`solve_lp`]);
//! - **parallel branch-and-bound** over the integer variables ([`solve`])
//!   with best-first work sharing, depth-first diving, warm-started node
//!   LPs, a wall-clock budget, and anytime incumbents — mirroring the
//!   paper's "15-minute best-effort" solver usage;
//! - a [`SolverStats`] report on every solution (node throughput, LP
//!   pivots, warm-start hit rate, incumbent timeline).
//!
//! The solver is deterministic: identical models yield identical objectives
//! regardless of the configured thread count
//! ([`SolveOptions::threads`]).
//!
//! # Example
//!
//! ```
//! use pdw_ilp::{Model, Relation, SolveOptions};
//!
//! // maximize x + 2y  s.t.  x + y <= 4, x,y in {0,1,2,3}  (minimize the negation)
//! let mut m = Model::new("toy");
//! let x = m.integer("x", 0.0, 3.0, -1.0);
//! let y = m.integer("y", 0.0, 3.0, -2.0);
//! m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! let sol = pdw_ilp::solve(&m, &SolveOptions::default()).expect("feasible");
//! assert_eq!(sol.value(y).round() as i64, 3);
//! assert_eq!(sol.value(x).round() as i64, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod model;
mod presolve;
mod simplex;

pub use branch::{
    solve, IncumbentEvent, MilpError, Solution, SolveOptions, SolveStatus, SolverStats,
};
pub use model::{LinExpr, Model, Relation, VarId, VarType};
pub use presolve::{presolve, presolve_with_stats, PresolveStats, Presolved};
pub use simplex::{solve_lp, solve_lp_with_bounds, solve_lp_with_deadline, LpOutcome, LpSolution};

/// Feasibility tolerance used throughout the solver.
pub const FEAS_TOL: f64 = 1e-7;

/// Integrality tolerance: a value within this distance of an integer is
/// considered integral.
pub const INT_TOL: f64 = 1e-6;
