//! MILP model: variables, linear constraints, objective.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Whether a variable is continuous or integer-constrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarType {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binaries are integers in `[0, 1]`).
    Integer,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// A linear expression: a sum of `coefficient × variable` terms.
///
/// Duplicate variables are allowed and their coefficients accumulate.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// An empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coef × var` and returns `self` for chaining.
    pub fn term(mut self, var: VarId, coef: f64) -> Self {
        self.terms.push((var, coef));
        self
    }

    /// The raw terms.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Evaluates the expression for an assignment (indexed by `VarId`).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.0]).sum()
    }
}

impl<I: IntoIterator<Item = (VarId, f64)>> From<I> for LinExpr {
    fn from(iter: I) -> Self {
        Self {
            terms: iter.into_iter().collect(),
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Variable {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub vtype: VarType,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub rel: Relation,
    pub rhs: f64,
}

/// A mixed-integer linear program: minimize `cᵀx` subject to linear
/// constraints and variable bounds, with a subset of variables integral.
///
/// The objective sense is always *minimize*; negate coefficients to
/// maximize.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    name: String,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn add_var(&mut self, name: &str, lb: f64, ub: f64, obj: f64, vtype: VarType) -> VarId {
        assert!(
            lb.is_finite(),
            "variable `{name}`: lower bound must be finite"
        );
        assert!(
            lb <= ub,
            "variable `{name}`: lower bound {lb} exceeds upper bound {ub}"
        );
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_string(),
            lb,
            ub,
            obj,
            vtype,
        });
        id
    }

    /// Adds a continuous variable with bounds `[lb, ub]` and objective
    /// coefficient `obj`. `ub` may be `f64::INFINITY`.
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite or `lb > ub`.
    pub fn continuous(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(name, lb, ub, obj, VarType::Continuous)
    }

    /// Adds an integer variable with bounds `[lb, ub]` and objective
    /// coefficient `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `lb` is not finite or `lb > ub`.
    pub fn integer(&mut self, name: &str, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(name, lb, ub, obj, VarType::Integer)
    }

    /// Adds a binary (0/1) variable with objective coefficient `obj`.
    pub fn binary(&mut self, name: &str, obj: f64) -> VarId {
        self.add_var(name, 0.0, 1.0, obj, VarType::Integer)
    }

    /// Adds the constraint `expr rel rhs`.
    pub fn constraint<E: Into<LinExpr>>(&mut self, expr: E, rel: Relation, rhs: f64) {
        self.constraints.push(Constraint {
            expr: expr.into(),
            rel,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer variables.
    pub fn num_integers(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.vtype == VarType::Integer)
            .count()
    }

    /// Lower bound of `var`.
    pub fn lb(&self, var: VarId) -> f64 {
        self.vars[var.0].lb
    }

    /// Upper bound of `var`.
    pub fn ub(&self, var: VarId) -> f64 {
        self.vars[var.0].ub
    }

    /// Name of `var`.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Objective value of an assignment (indexed by `VarId`).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| v.obj * values[i])
            .sum()
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// `tol`, returning the first violation as a human-readable string.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound or constraint.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        for (i, v) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < v.lb - tol || x > v.ub + tol {
                return Err(format!(
                    "variable `{}` = {x} outside bounds [{}, {}]",
                    v.name, v.lb, v.ub
                ));
            }
            if v.vtype == VarType::Integer && (x - x.round()).abs() > crate::INT_TOL {
                return Err(format!("variable `{}` = {x} not integral", v.name));
            }
        }
        for (k, c) in self.constraints.iter().enumerate() {
            let lhs = c.expr.eval(values);
            let ok = match c.rel {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint #{k}: lhs {lhs} violates {} {}",
                    c.rel, c.rhs
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model `{}`: {} vars ({} int), {} constraints",
            self.name,
            self.num_vars(),
            self.num_integers(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_accumulates_duplicates() {
        let e = LinExpr::new().term(VarId(0), 2.0).term(VarId(0), 3.0);
        assert_eq!(e.eval(&[2.0]), 10.0);
    }

    #[test]
    fn binary_is_integer_in_unit_box() {
        let mut m = Model::new("t");
        let b = m.binary("b", 1.0);
        assert_eq!(m.lb(b), 0.0);
        assert_eq!(m.ub(b), 1.0);
        assert_eq!(m.num_integers(), 1);
    }

    #[test]
    fn check_feasible_reports_violations() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 5.0);
        assert!(m.check_feasible(&[6.0], 1e-9).is_ok());
        let err = m.check_feasible(&[4.0], 1e-9).unwrap_err();
        assert!(err.contains("constraint #0"));
        let err = m.check_feasible(&[11.0], 1e-9).unwrap_err();
        assert!(err.contains("outside bounds"));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_lower_bound_rejected() {
        let mut m = Model::new("t");
        let _ = m.continuous("x", f64::NEG_INFINITY, 0.0, 1.0);
    }

    #[test]
    fn objective_value_uses_coefficients() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, 1.0, 3.0);
        let _y = m.continuous("y", 0.0, 1.0, -1.0);
        assert_eq!(m.objective_value(&[2.0, 4.0]), 2.0);
    }
}
