//! Presolve: cheap model reductions applied before branch-and-bound.
//!
//! Scheduling models are full of rows the simplex should never see:
//! singleton rows (`a·x ≤ b`) that are really variable bounds, rows whose
//! variables are all fixed, and empty rows. Folding them away shrinks the
//! dense tableau quadratically, and tightening integer bounds to integral
//! values removes fractional vertices before the first pivot.
//!
//! The reduction keeps the variable set (and [`VarId`](crate::VarId)s)
//! intact — only bounds tighten and rows disappear — so solutions of the
//! reduced model are solutions of the original and vice versa.

use crate::model::{Model, Relation};
use crate::{FEAS_TOL, INT_TOL};

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// An equivalent model with the same variables, possibly tighter bounds
    /// and fewer rows.
    Reduced(Model),
    /// The reductions proved the model infeasible.
    Infeasible,
}

/// Applies singleton-row absorption, fixed-variable substitution, and
/// empty-row elimination until a fixpoint.
pub fn presolve(model: &Model) -> Presolved {
    let mut m = model.clone();
    loop {
        let mut changed = false;
        let mut keep = Vec::with_capacity(m.constraints.len());

        for c in std::mem::take(&mut m.constraints) {
            // Fold fixed variables into the right-hand side.
            let mut rhs = c.rhs;
            let mut live: Vec<(crate::VarId, f64)> = Vec::new();
            let mut acc: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &(v, coef) in c.expr.terms() {
                *acc.entry(v.0).or_insert(0.0) += coef;
            }
            for (j, coef) in acc {
                if coef == 0.0 {
                    continue;
                }
                let (lb, ub) = (m.vars[j].lb, m.vars[j].ub);
                if (ub - lb).abs() <= FEAS_TOL {
                    rhs -= coef * lb;
                    changed = true;
                } else {
                    live.push((crate::VarId(j), coef));
                }
            }

            match live.len() {
                0 => {
                    // Empty row: feasibility is decided now.
                    let ok = match c.rel {
                        Relation::Le => 0.0 <= rhs + FEAS_TOL,
                        Relation::Ge => 0.0 >= rhs - FEAS_TOL,
                        Relation::Eq => rhs.abs() <= FEAS_TOL,
                    };
                    if !ok {
                        return Presolved::Infeasible;
                    }
                    changed = true;
                }
                1 => {
                    // Singleton row: absorb into the variable's bounds.
                    let (v, a) = live[0];
                    let var = &mut m.vars[v.0];
                    let bound = rhs / a;
                    let tighten_ub = matches!(
                        (c.rel, a > 0.0),
                        (Relation::Le, true) | (Relation::Ge, false)
                    );
                    let tighten_lb = matches!(
                        (c.rel, a > 0.0),
                        (Relation::Ge, true) | (Relation::Le, false)
                    );
                    if c.rel == Relation::Eq {
                        var.lb = var.lb.max(bound);
                        var.ub = var.ub.min(bound);
                    } else if tighten_ub {
                        var.ub = var.ub.min(bound);
                    } else if tighten_lb {
                        var.lb = var.lb.max(bound);
                    }
                    if var.vtype == crate::VarType::Integer {
                        var.lb = (var.lb - INT_TOL).ceil();
                        var.ub = (var.ub + INT_TOL).floor();
                    }
                    if var.lb > var.ub + FEAS_TOL {
                        return Presolved::Infeasible;
                    }
                    changed = true;
                }
                _ => {
                    if live.len() != c.expr.terms().len() || rhs != c.rhs {
                        changed = true;
                    }
                    keep.push(crate::model::Constraint {
                        expr: live.into(),
                        rel: c.rel,
                        rhs,
                    });
                }
            }
        }
        m.constraints = keep;
        if !changed {
            break;
        }
    }
    Presolved::Reduced(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Le, 10.0); // x <= 5
        m.constraint([(x, 1.0)], Relation::Ge, 2.0); // x >= 2
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0);
                assert_eq!(r.lb(x), 2.0);
                assert_eq!(r.ub(x), 5.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn negative_coefficient_singletons_flip_direction() {
        let mut m = Model::new("t");
        let x = m.continuous("x", -0.0, 100.0, 1.0);
        m.constraint([(x, -1.0)], Relation::Le, -3.0); // -x <= -3  =>  x >= 3
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0);
                assert_eq!(r.lb(x), 3.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Le, 7.0); // x <= 3.5 -> 3
        m.constraint([(x, 3.0)], Relation::Ge, 4.0); // x >= 1.33 -> 2
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.lb(x), 2.0);
                assert_eq!(r.ub(x), 3.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn fixed_variables_fold_into_rhs() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 4.0, 4.0, 0.0); // fixed at 4
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 10.0); // y >= 6
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0); // became a singleton, absorbed
                assert_eq!(r.lb(y), 6.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn contradictory_singletons_detect_infeasibility() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 8.0);
        m.constraint([(x, 1.0)], Relation::Le, 3.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn empty_contradiction_detects_infeasibility() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 2.0, 0.0);
        m.constraint([(x, 1.0)], Relation::Ge, 5.0); // 2 >= 5: false
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn multi_variable_rows_survive() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        let y = m.continuous("y", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        match presolve(&m) {
            Presolved::Reduced(r) => assert_eq!(r.num_constraints(), 1),
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        // min x + y  s.t.  x >= 2 (singleton), x + y >= 5.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 2.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let orig = match crate::solve_lp(&m) {
            crate::LpOutcome::Optimal(s) => s.objective,
            o => panic!("unexpected {o:?}"),
        };
        let reduced = match presolve(&m) {
            Presolved::Reduced(r) => match crate::solve_lp(&r) {
                crate::LpOutcome::Optimal(s) => s.objective,
                o => panic!("unexpected {o:?}"),
            },
            Presolved::Infeasible => panic!("feasible model"),
        };
        assert!((orig - reduced).abs() < 1e-9);
    }
}
