//! Presolve: cheap model reductions applied before branch-and-bound.
//!
//! Scheduling models are full of rows the simplex should never see:
//! singleton rows (`a·x ≤ b`) that are really variable bounds, rows whose
//! variables are all fixed, and empty rows. Folding them away shrinks the
//! dense tableau quadratically, and tightening integer bounds to integral
//! values removes fractional vertices before the first pivot.
//!
//! On top of the row reductions, an activity-based **bound propagation**
//! pass walks the surviving multi-variable rows: from the row's minimum and
//! maximum activity (each variable at its favorable bound) it derives
//! implied bounds for every variable, rounds them inward for integers, and
//! detects rows that can never be satisfied. On big-M disjunctions this
//! frequently fixes indicator binaries before a single LP is solved.
//!
//! The reduction keeps the variable set (and [`VarId`](crate::VarId)s)
//! intact — only bounds tighten and rows disappear — so solutions of the
//! reduced model are solutions of the original and vice versa.

use crate::model::{Model, Relation};
use crate::{FEAS_TOL, INT_TOL};

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// An equivalent model with the same variables, possibly tighter bounds
    /// and fewer rows.
    Reduced(Model),
    /// The reductions proved the model infeasible.
    Infeasible,
}

/// What presolve accomplished, for the solver's observability report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PresolveStats {
    /// Constraint rows eliminated (singletons absorbed, empty rows dropped).
    pub rows_removed: u64,
    /// Variables that presolve newly fixed to a single value.
    pub vars_fixed: u64,
    /// Individual variable bounds strictly tightened (including integral
    /// rounding and activity propagation).
    pub bounds_tightened: u64,
}

/// Minimum improvement for a propagated bound to count as progress. Keeps
/// the fixpoint loop from chasing vanishing tightenings forever.
const PROP_TOL: f64 = 1e-7;

/// Cap on full presolve passes; each pass re-examines every row, so the cap
/// bounds presolve at O(passes · nnz).
const MAX_PASSES: usize = 16;

/// Applies singleton-row absorption, fixed-variable substitution, empty-row
/// elimination, and activity-based bound propagation until a fixpoint.
pub fn presolve(model: &Model) -> Presolved {
    presolve_with_stats(model).0
}

/// Like [`presolve`], additionally reporting what was reduced.
pub fn presolve_with_stats(model: &Model) -> (Presolved, PresolveStats) {
    let mut stats = PresolveStats::default();
    let rows_in = model.num_constraints() as u64;
    let fixed_in = count_fixed(model);

    let mut m = model.clone();
    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        let mut keep = Vec::with_capacity(m.constraints.len());

        for c in std::mem::take(&mut m.constraints) {
            // Fold fixed variables into the right-hand side.
            let mut rhs = c.rhs;
            let mut live: Vec<(crate::VarId, f64)> = Vec::new();
            let mut acc: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &(v, coef) in c.expr.terms() {
                *acc.entry(v.0).or_insert(0.0) += coef;
            }
            for (j, coef) in acc {
                if coef == 0.0 {
                    continue;
                }
                let (lb, ub) = (m.vars[j].lb, m.vars[j].ub);
                if (ub - lb).abs() <= FEAS_TOL {
                    rhs -= coef * lb;
                    changed = true;
                } else {
                    live.push((crate::VarId(j), coef));
                }
            }

            match live.len() {
                0 => {
                    // Empty row: feasibility is decided now.
                    let ok = match c.rel {
                        Relation::Le => 0.0 <= rhs + FEAS_TOL,
                        Relation::Ge => 0.0 >= rhs - FEAS_TOL,
                        Relation::Eq => rhs.abs() <= FEAS_TOL,
                    };
                    if !ok {
                        return (Presolved::Infeasible, stats);
                    }
                    changed = true;
                }
                1 => {
                    // Singleton row: absorb into the variable's bounds.
                    let (v, a) = live[0];
                    let var = &mut m.vars[v.0];
                    let bound = rhs / a;
                    let tighten_ub = matches!(
                        (c.rel, a > 0.0),
                        (Relation::Le, true) | (Relation::Ge, false)
                    );
                    let tighten_lb = matches!(
                        (c.rel, a > 0.0),
                        (Relation::Ge, true) | (Relation::Le, false)
                    );
                    let (old_lb, old_ub) = (var.lb, var.ub);
                    if c.rel == Relation::Eq {
                        var.lb = var.lb.max(bound);
                        var.ub = var.ub.min(bound);
                    } else if tighten_ub {
                        var.ub = var.ub.min(bound);
                    } else if tighten_lb {
                        var.lb = var.lb.max(bound);
                    }
                    if var.vtype == crate::VarType::Integer {
                        var.lb = (var.lb - INT_TOL).ceil();
                        var.ub = (var.ub + INT_TOL).floor();
                    }
                    stats.bounds_tightened += (var.lb > old_lb) as u64 + (var.ub < old_ub) as u64;
                    if var.lb > var.ub + FEAS_TOL {
                        return (Presolved::Infeasible, stats);
                    }
                    changed = true;
                }
                _ => {
                    if live.len() != c.expr.terms().len() || rhs != c.rhs {
                        changed = true;
                    }
                    keep.push(crate::model::Constraint {
                        expr: live.into(),
                        rel: c.rel,
                        rhs,
                    });
                }
            }
        }

        // Activity-based bound propagation over the surviving rows.
        match propagate_bounds(&mut m, &keep, &mut stats) {
            Propagation::Infeasible => return (Presolved::Infeasible, stats),
            Propagation::Tightened => changed = true,
            Propagation::Fixpoint => {}
        }

        m.constraints = keep;
        if !changed {
            break;
        }
    }

    stats.rows_removed = rows_in.saturating_sub(m.num_constraints() as u64);
    stats.vars_fixed = count_fixed(&m).saturating_sub(fixed_in);
    (Presolved::Reduced(m), stats)
}

fn count_fixed(m: &Model) -> u64 {
    m.vars
        .iter()
        .filter(|v| (v.ub - v.lb).abs() <= FEAS_TOL)
        .count() as u64
}

enum Propagation {
    Fixpoint,
    Tightened,
    Infeasible,
}

/// The minimum and maximum achievable value of a row's left-hand side,
/// tracked as a finite part plus a count of infinite contributions (so the
/// residual activity excluding one variable stays well-defined).
#[derive(Clone, Copy, Default)]
struct Activity {
    finite: f64,
    inf: u32,
}

impl Activity {
    fn add(&mut self, x: f64) {
        if x.is_finite() {
            self.finite += x;
        } else {
            self.inf += 1;
        }
    }

    /// Activity with one contribution `x` removed; `None` when the residual
    /// is still infinite.
    fn without(&self, x: f64) -> Option<f64> {
        if x.is_finite() {
            (self.inf == 0).then_some(self.finite - x)
        } else {
            (self.inf == 1).then_some(self.finite)
        }
    }

    /// Total of a *minimum* activity: infinite contributions pull it to −∞.
    fn total_min(&self) -> f64 {
        if self.inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.finite
        }
    }

    /// Total of a *maximum* activity: infinite contributions push it to +∞.
    fn total_max(&self) -> f64 {
        if self.inf > 0 {
            f64::INFINITY
        } else {
            self.finite
        }
    }
}

/// One propagation sweep over `rows`. Tightens `m.vars` bounds in place.
fn propagate_bounds(
    m: &mut Model,
    rows: &[crate::model::Constraint],
    stats: &mut PresolveStats,
) -> Propagation {
    let mut tightened = false;
    for c in rows {
        // Minimum/maximum activity with every variable at its favorable
        // bound. Signs: a>0 contributes a·lb to the min, a·ub to the max.
        let mut min_act = Activity::default();
        let mut max_act = Activity::default();
        for &(v, a) in c.expr.terms() {
            let (lb, ub) = (m.vars[v.0].lb, m.vars[v.0].ub);
            let (lo, hi) = if a > 0.0 {
                (a * lb, a * ub)
            } else {
                (a * ub, a * lb)
            };
            min_act.add(lo);
            max_act.add(hi);
        }

        // A row whose best case still violates the relation is proof of
        // infeasibility.
        let lhs_min = min_act.total_min();
        let lhs_max = max_act.total_max();
        match c.rel {
            Relation::Le if lhs_min > c.rhs + FEAS_TOL => return Propagation::Infeasible,
            Relation::Ge if lhs_max < c.rhs - FEAS_TOL => return Propagation::Infeasible,
            Relation::Eq if lhs_min > c.rhs + FEAS_TOL || lhs_max < c.rhs - FEAS_TOL => {
                return Propagation::Infeasible
            }
            _ => {}
        }

        for &(v, a) in c.expr.terms() {
            let var = &m.vars[v.0];
            let (lb, ub) = (var.lb, var.ub);
            let (lo_j, hi_j) = if a > 0.0 {
                (a * lb, a * ub)
            } else {
                (a * ub, a * lb)
            };

            // From Σ ≤ rhs: a_j·x_j ≤ rhs − residual_min.
            let implied_hi = match c.rel {
                Relation::Le | Relation::Eq => min_act.without(lo_j).map(|r| c.rhs - r),
                Relation::Ge => None,
            };
            // From Σ ≥ rhs: a_j·x_j ≥ rhs − residual_max.
            let implied_lo = match c.rel {
                Relation::Ge | Relation::Eq => max_act.without(hi_j).map(|r| c.rhs - r),
                Relation::Le => None,
            };

            let (mut new_lb, mut new_ub) = (lb, ub);
            if let Some(h) = implied_hi {
                if a > 0.0 {
                    new_ub = new_ub.min(h / a);
                } else {
                    new_lb = new_lb.max(h / a);
                }
            }
            if let Some(l) = implied_lo {
                if a > 0.0 {
                    new_lb = new_lb.max(l / a);
                } else {
                    new_ub = new_ub.min(l / a);
                }
            }
            if m.vars[v.0].vtype == crate::VarType::Integer {
                new_lb = (new_lb - INT_TOL).ceil();
                new_ub = (new_ub + INT_TOL).floor();
            }
            if new_lb > new_ub + FEAS_TOL {
                return Propagation::Infeasible;
            }
            // Only meaningful improvements count as progress, otherwise the
            // fixpoint loop chases epsilons.
            let var = &mut m.vars[v.0];
            if new_lb > lb + PROP_TOL {
                var.lb = new_lb;
                stats.bounds_tightened += 1;
                tightened = true;
            }
            if new_ub < ub - PROP_TOL {
                var.ub = new_ub;
                stats.bounds_tightened += 1;
                tightened = true;
            }
        }
    }
    if tightened {
        Propagation::Tightened
    } else {
        Propagation::Fixpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Le, 10.0); // x <= 5
        m.constraint([(x, 1.0)], Relation::Ge, 2.0); // x >= 2
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0);
                assert_eq!(r.lb(x), 2.0);
                assert_eq!(r.ub(x), 5.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn negative_coefficient_singletons_flip_direction() {
        let mut m = Model::new("t");
        let x = m.continuous("x", -0.0, 100.0, 1.0);
        m.constraint([(x, -1.0)], Relation::Le, -3.0); // -x <= -3  =>  x >= 3
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0);
                assert_eq!(r.lb(x), 3.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Le, 7.0); // x <= 3.5 -> 3
        m.constraint([(x, 3.0)], Relation::Ge, 4.0); // x >= 1.33 -> 2
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.lb(x), 2.0);
                assert_eq!(r.ub(x), 3.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn fixed_variables_fold_into_rhs() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 4.0, 4.0, 0.0); // fixed at 4
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 10.0); // y >= 6
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.num_constraints(), 0); // became a singleton, absorbed
                assert_eq!(r.lb(y), 6.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn contradictory_singletons_detect_infeasibility() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 8.0);
        m.constraint([(x, 1.0)], Relation::Le, 3.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn empty_contradiction_detects_infeasibility() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 2.0, 0.0);
        m.constraint([(x, 1.0)], Relation::Ge, 5.0); // 2 >= 5: false
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn multi_variable_rows_survive() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        let y = m.continuous("y", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        match presolve(&m) {
            Presolved::Reduced(r) => assert_eq!(r.num_constraints(), 1),
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn presolved_model_has_same_optimum() {
        // min x + y  s.t.  x >= 2 (singleton), x + y >= 5.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 2.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let orig = match crate::solve_lp(&m) {
            crate::LpOutcome::Optimal(s) => s.objective,
            o => panic!("unexpected {o:?}"),
        };
        let reduced = match presolve(&m) {
            Presolved::Reduced(r) => match crate::solve_lp(&r) {
                crate::LpOutcome::Optimal(s) => s.objective,
                o => panic!("unexpected {o:?}"),
            },
            Presolved::Infeasible => panic!("feasible model"),
        };
        assert!((orig - reduced).abs() < 1e-9);
    }

    // ------------------------------------------------------------------
    // Activity-based bound propagation
    // ------------------------------------------------------------------

    #[test]
    fn propagation_tightens_multi_variable_rows() {
        // 2x + y <= 4 with x, y >= 0: implied x <= 2, y <= 4.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 2.0), (y, 1.0)], Relation::Le, 4.0);
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.ub(x), 2.0);
                assert_eq!(r.ub(y), 4.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn propagation_rounds_integer_bounds_inward() {
        // 2x + 2y <= 5, x,y integer in [0, 9]: implied x <= 2 (2.5 floored).
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 9.0, 1.0);
        let y = m.integer("y", 0.0, 9.0, 1.0);
        m.constraint([(x, 2.0), (y, 2.0)], Relation::Le, 5.0);
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.ub(x), 2.0);
                assert_eq!(r.ub(y), 2.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn propagation_detects_unsatisfiable_activity() {
        // x + y <= 3 but both variables live in [2, 10]: min activity 4 > 3.
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 10.0, 1.0);
        let y = m.continuous("y", 2.0, 10.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn propagation_handles_infinite_bounds() {
        // x unbounded above: x + y >= 3 cannot tighten y's upper bound, and
        // no spurious infeasibility may be reported.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.continuous("y", 0.0, 5.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.ub(y), 5.0);
                assert!(r.ub(x).is_infinite());
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn propagation_fixes_big_m_indicator() {
        // y <= 10·k with y in [4, 8] and k binary: k must be 1.
        let mut m = Model::new("t");
        let y = m.continuous("y", 4.0, 8.0, 1.0);
        let k = m.binary("k", 0.0);
        m.constraint([(y, 1.0), (k, -10.0)], Relation::Le, 0.0);
        match presolve(&m) {
            Presolved::Reduced(r) => {
                assert_eq!(r.lb(k), 1.0);
                assert_eq!(r.ub(k), 1.0);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn stats_report_reductions() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        let y = m.continuous("y", 0.0, 100.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 2.0); // absorbed
        m.constraint([(x, 1.0), (y, 2.0)], Relation::Le, 10.0); // propagates
        let (p, stats) = presolve_with_stats(&m);
        assert!(matches!(p, Presolved::Reduced(_)));
        assert_eq!(stats.rows_removed, 1);
        assert!(stats.bounds_tightened >= 2, "stats: {stats:?}");
    }

    #[test]
    fn stats_count_newly_fixed_vars() {
        // Equality singleton fixes x; a pre-fixed variable is not counted.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 100.0, 1.0);
        let _pre = m.continuous("pre", 3.0, 3.0, 0.0);
        m.constraint([(x, 1.0)], Relation::Eq, 7.0);
        let (p, stats) = presolve_with_stats(&m);
        assert!(matches!(p, Presolved::Reduced(_)));
        assert_eq!(stats.vars_fixed, 1);
    }
}
