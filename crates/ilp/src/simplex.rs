//! Bounded-variable two-phase primal simplex over a dense tableau, with
//! warm-started reoptimization for branch-and-bound.
//!
//! Variable bounds are handled natively (nonbasic variables rest at either
//! bound; the ratio test includes bound flips), which keeps binary-heavy
//! scheduling models — the PathDriver-Wash workload — at half the row count
//! of the textbook formulation.
//!
//! The solver is split for reuse across branch-and-bound nodes:
//!
//! - [`Prepared`] holds the canonical constraint matrix built **once** per
//!   model (fixed column layout: structurals, then one slack per inequality
//!   row, then one artificial per row), so a node solve starts from a flat
//!   `memcpy` instead of re-assembling rows.
//! - [`Workspace`] owns every mutable buffer (tableau, basic values, reduced
//!   costs, pivot row). A branch-and-bound worker keeps one workspace and
//!   reuses it for every node it processes — zero per-node allocations.
//! - [`Basis`] snapshots a parent node's optimal basis. A child LP differs
//!   from its parent by a single variable bound, so the parent basis is
//!   rebuilt by Gauss-Jordan elimination and reoptimized with the **dual
//!   simplex** (the basis stays dual feasible under bound changes), skipping
//!   phase 1 entirely on the hot path.
//!
//! The standalone entry points ([`solve_lp`], [`solve_lp_with_bounds`],
//! [`solve_lp_with_deadline`]) build a `Prepared`/`Workspace` pair
//! internally and run the cold two-phase path.

use std::time::Instant;

use crate::model::{Model, Relation};
use crate::FEAS_TOL;

/// A solved LP relaxation: values in the *original* variable space plus the
/// objective.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Value per variable, indexed by [`VarId`](crate::VarId).
    pub values: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no solution within the bounds.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit before convergence (numerically cycling
    /// or extremely degenerate instance). Treated as "unknown" by callers.
    Stalled,
}

/// Solves the LP relaxation of `model` (integrality dropped) with the
/// model's own bounds.
pub fn solve_lp(model: &Model) -> LpOutcome {
    let lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
    let ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
    solve_lp_with_bounds(model, &lb, &ub)
}

/// Solves the LP relaxation with overridden variable bounds (used by
/// branch-and-bound).
pub fn solve_lp_with_bounds(model: &Model, lb: &[f64], ub: &[f64]) -> LpOutcome {
    solve_lp_with_deadline(model, lb, ub, None)
}

/// Like [`solve_lp_with_bounds`], aborting with [`LpOutcome::Stalled`] once
/// `deadline` passes — a single large LP must not blow through the MILP's
/// wall-clock budget.
pub fn solve_lp_with_deadline(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    deadline: Option<Instant>,
) -> LpOutcome {
    let prep = Prepared::new(model);
    let mut ws = Workspace::new();
    solve_cold(&prep, &mut ws, lb, ub, deadline)
}

/// Per-column simplex status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Status {
    Basic,
    #[default]
    Lower,
    Upper,
}

/// A basis snapshot: which column is basic in each row, plus the resting
/// bound of every nonbasic column. Enough to reconstruct the tableau of the
/// node that produced it — or of a child differing only in variable bounds.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    pub(crate) cols: Vec<usize>,
    pub(crate) status: Vec<Status>,
}

enum Phase1 {
    Feasible,
    Infeasible,
    Stalled,
}

enum Phase2 {
    Optimal,
    Unbounded,
    Stalled,
}

enum Step {
    Moved,
    Converged,
    Unbounded,
}

enum Dual {
    PrimalFeasible,
    Infeasible,
    Stalled,
}

/// Why a warm-started solve could not be completed (the caller falls back to
/// the cold two-phase path).
pub(crate) enum WarmError {
    /// The parent basis is numerically singular under the child's matrix.
    Singular,
    /// The dual/primal cleanup loops hit their iteration or time budget.
    Stalled,
}

const RC_TOL: f64 = 1e-9;
const PIVOT_TOL: f64 = 1e-9;
const DEGENERATE_STREAK: u32 = 60;
/// A rebuilt basis whose pivot falls below this is treated as singular.
const REBUILD_TOL: f64 = 1e-8;

/// The canonical constraint matrix of one model, built once and shared by
/// every node solve (read-only).
///
/// Column layout (fixed, independent of node bounds):
/// `[0, n)` structurals · `[n, art0)` slacks (`+1` per `≤` row, `−1` per `≥`
/// row, in constraint order) · `[art0, ncols)` one artificial per row
/// (stored as zero here; materialized as an identity entry when a tableau is
/// loaded).
#[derive(Debug, Clone)]
pub(crate) struct Prepared {
    n: usize,
    m: usize,
    ncols: usize,
    art0: usize,
    /// Dense `m × ncols` matrix, row-major.
    a: Vec<f64>,
    /// Unshifted right-hand sides.
    rhs: Vec<f64>,
    /// Phase-2 cost (structural objective coefficients; 0 elsewhere).
    cost: Vec<f64>,
    /// Slack column of each row (`None` for equality rows).
    slack_of_row: Vec<Option<usize>>,
}

impl Prepared {
    pub(crate) fn new(model: &Model) -> Self {
        let n = model.num_vars();
        let m = model.num_constraints();
        let n_slacks = model
            .constraints
            .iter()
            .filter(|c| c.rel != Relation::Eq)
            .count();
        let art0 = n + n_slacks;
        let ncols = art0 + m;

        let mut a = vec![0.0; m * ncols];
        let mut rhs = Vec::with_capacity(m);
        let mut slack_of_row = Vec::with_capacity(m);
        let mut next_slack = n;
        for (i, c) in model.constraints.iter().enumerate() {
            let row = &mut a[i * ncols..(i + 1) * ncols];
            for &(v, coef) in c.expr.terms() {
                row[v.0] += coef;
            }
            slack_of_row.push(match c.rel {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    next_slack += 1;
                    Some(next_slack - 1)
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    next_slack += 1;
                    Some(next_slack - 1)
                }
                Relation::Eq => None,
            });
            rhs.push(c.rhs);
        }

        let mut cost = vec![0.0; ncols];
        for (j, cj) in cost.iter_mut().enumerate().take(n) {
            *cj = model.vars[j].obj;
        }

        Prepared {
            n,
            m,
            ncols,
            art0,
            a,
            rhs,
            cost,
            slack_of_row,
        }
    }

    fn iter_limit(&self) -> u64 {
        200 * (self.m as u64 + self.ncols as u64) + 2_000
    }
}

/// Reusable mutable state for node solves. One per worker thread; every
/// buffer is resized on first use with a given [`Prepared`] and then reused
/// allocation-free.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    rows: Vec<f64>,
    beta: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<Status>,
    upper: Vec<f64>,
    rc: Vec<f64>,
    pivot_row: Vec<f64>,
    row_of: Vec<usize>,
    degenerate_streak: u32,
    /// Total pivots (basis changes and bound flips) performed through this
    /// workspace; the branch-and-bound layer aggregates these into
    /// [`SolverStats`](crate::SolverStats).
    pub(crate) pivots: u64,
}

impl Workspace {
    pub(crate) fn new() -> Self {
        Workspace::default()
    }

    fn reset(&mut self, prep: &Prepared) {
        self.rows.clear();
        self.rows.extend_from_slice(&prep.a);
        self.beta.clear();
        self.basis.clear();
        self.status.clear();
        self.status.resize(prep.ncols, Status::Lower);
        self.upper.clear();
        self.upper.resize(prep.ncols, f64::INFINITY);
        self.rc.clear();
        self.rc.resize(prep.ncols, 0.0);
        self.pivot_row.clear();
        self.pivot_row.resize(prep.ncols, 0.0);
        self.row_of.clear();
        self.row_of.resize(prep.ncols, usize::MAX);
        self.degenerate_streak = 0;
    }

    /// Snapshots the current basis (valid after an optimal solve).
    pub(crate) fn snapshot_basis(&self) -> Basis {
        Basis {
            cols: self.basis.clone(),
            status: self.status.clone(),
        }
    }
}

/// Solves one LP from scratch (two-phase), reusing `ws` buffers.
pub(crate) fn solve_cold(
    prep: &Prepared,
    ws: &mut Workspace,
    lb: &[f64],
    ub: &[f64],
    deadline: Option<Instant>,
) -> LpOutcome {
    for j in 0..prep.n {
        if lb[j] > ub[j] + FEAS_TOL {
            return LpOutcome::Infeasible;
        }
    }
    let mut s = Solver { prep, ws, deadline };
    s.load_cold(lb, ub);
    match s.phase1() {
        Phase1::Feasible => {}
        Phase1::Infeasible => return LpOutcome::Infeasible,
        Phase1::Stalled => return LpOutcome::Stalled,
    }
    match s.phase2() {
        Phase2::Optimal => {}
        Phase2::Unbounded => return LpOutcome::Unbounded,
        Phase2::Stalled => return LpOutcome::Stalled,
    }
    LpOutcome::Optimal(s.extract(lb))
}

/// Solves one LP warm-started from a parent basis: rebuilds the tableau by
/// elimination, restores primal feasibility with the dual simplex, and
/// polishes with primal phase 2. Falls back to the caller on numerical
/// trouble rather than guessing.
pub(crate) fn solve_warm(
    prep: &Prepared,
    ws: &mut Workspace,
    lb: &[f64],
    ub: &[f64],
    basis: &Basis,
    deadline: Option<Instant>,
) -> Result<LpOutcome, WarmError> {
    for j in 0..prep.n {
        if lb[j] > ub[j] + FEAS_TOL {
            return Ok(LpOutcome::Infeasible);
        }
    }
    debug_assert_eq!(basis.cols.len(), prep.m);
    debug_assert_eq!(basis.status.len(), prep.ncols);
    let mut s = Solver { prep, ws, deadline };
    if !s.load_warm(lb, ub, basis) {
        return Err(WarmError::Singular);
    }
    match s.dual_simplex() {
        Dual::PrimalFeasible => {}
        Dual::Infeasible => return Ok(LpOutcome::Infeasible),
        Dual::Stalled => return Err(WarmError::Stalled),
    }
    match s.phase2() {
        Phase2::Optimal => {}
        Phase2::Unbounded => return Ok(LpOutcome::Unbounded),
        Phase2::Stalled => return Err(WarmError::Stalled),
    }
    Ok(LpOutcome::Optimal(s.extract(lb)))
}

struct Solver<'a> {
    prep: &'a Prepared,
    ws: &'a mut Workspace,
    deadline: Option<Instant>,
}

impl Solver<'_> {
    /// Shifted right-hand side of row `i`: `rhs_i − Σ_j a_ij · lb_j`.
    fn shifted_rhs(&self, lb: &[f64]) -> Vec<f64> {
        // Reuses no scratch: called once per load, and the result becomes
        // `beta` (moved, not copied).
        let (nc, n) = (self.prep.ncols, self.prep.n);
        self.prep
            .rhs
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let row = &self.prep.a[i * nc..i * nc + n];
                r - row
                    .iter()
                    .zip(lb)
                    .filter(|(&a, _)| a != 0.0)
                    .map(|(&a, &l)| a * l)
                    .sum::<f64>()
            })
            .collect()
    }

    fn set_structural_uppers(&mut self, lb: &[f64], ub: &[f64]) {
        for j in 0..self.prep.n {
            self.ws.upper[j] = ub[j] - lb[j];
        }
    }

    /// Loads the classic phase-1 start: slack basis where the slack sign
    /// works out, artificial basis elsewhere.
    fn load_cold(&mut self, lb: &[f64], ub: &[f64]) {
        let prep = self.prep;
        self.ws.reset(prep);
        self.set_structural_uppers(lb, ub);
        let mut rhs = self.shifted_rhs(lb);
        let ws = &mut *self.ws;
        let nc = prep.ncols;
        for (i, r) in rhs.iter_mut().enumerate() {
            // Normalize rhs >= 0 by flipping the working row (the canonical
            // matrix in `prep` is untouched).
            if *r < 0.0 {
                for x in ws.rows[i * nc..(i + 1) * nc].iter_mut() {
                    *x = -*x;
                }
                *r = -*r;
            }
            // A +1 slack can start basic; otherwise the row's artificial.
            let basic = match prep.slack_of_row[i] {
                Some(sj) if ws.rows[i * nc + sj] > 0.0 => sj,
                _ => {
                    let aj = prep.art0 + i;
                    ws.rows[i * nc + aj] = 1.0;
                    aj
                }
            };
            ws.basis.push(basic);
            ws.status[basic] = Status::Basic;
        }
        // Artificials not in the basis can never move.
        for j in prep.art0..nc {
            if ws.status[j] != Status::Basic {
                ws.upper[j] = 0.0;
            }
        }
        ws.beta = rhs;
    }

    /// Loads the tableau for a parent basis via Gauss-Jordan elimination
    /// with partial pivoting. Returns `false` if the basis is singular for
    /// this node's matrix.
    fn load_warm(&mut self, lb: &[f64], ub: &[f64], basis: &Basis) -> bool {
        let prep = self.prep;
        self.ws.reset(prep);
        self.set_structural_uppers(lb, ub);
        let mut rhs = self.shifted_rhs(lb);
        let ws = &mut *self.ws;
        let nc = prep.ncols;
        // Artificial identity entries (all clamped to zero post-phase-1).
        for i in 0..prep.m {
            ws.rows[i * nc + prep.art0 + i] = 1.0;
        }
        for j in prep.art0..nc {
            ws.upper[j] = 0.0;
        }
        ws.status.copy_from_slice(&basis.status);
        ws.basis.extend_from_slice(&basis.cols);

        // Re-eliminate the basic columns: after processing step k, column
        // basis[k] is the k-th identity column.
        for k in 0..prep.m {
            let col = ws.basis[k];
            // Partial pivoting over the not-yet-assigned rows.
            let (mut best_row, mut best_abs) = (k, ws.rows[k * nc + col].abs());
            for r in k + 1..prep.m {
                let a = ws.rows[r * nc + col].abs();
                if a > best_abs {
                    best_abs = a;
                    best_row = r;
                }
            }
            if best_abs < REBUILD_TOL {
                return false;
            }
            if best_row != k {
                // Swap rows (flat storage: swap element-wise) and rhs.
                for j in 0..nc {
                    ws.rows.swap(k * nc + j, best_row * nc + j);
                }
                rhs.swap(k, best_row);
            }
            let inv = 1.0 / ws.rows[k * nc + col];
            for x in ws.rows[k * nc..(k + 1) * nc].iter_mut() {
                *x *= inv;
            }
            rhs[k] *= inv;
            ws.pivot_row.copy_from_slice(&ws.rows[k * nc..(k + 1) * nc]);
            let pivot_rhs = rhs[k];
            for (i, r) in rhs.iter_mut().enumerate() {
                if i == k {
                    continue;
                }
                let f = ws.rows[i * nc + col];
                if f.abs() > 1e-12 {
                    let row = &mut ws.rows[i * nc..(i + 1) * nc];
                    for (x, p) in row.iter_mut().zip(&ws.pivot_row) {
                        *x -= f * p;
                    }
                    row[col] = 0.0;
                    *r -= f * pivot_rhs;
                }
            }
        }

        // Basic values: beta = B⁻¹b − Σ_{j at upper} (B⁻¹A)_j · u_j.
        ws.beta.extend_from_slice(&rhs);
        for j in 0..nc {
            if ws.status[j] == Status::Upper {
                let u = ws.upper[j];
                if u != 0.0 {
                    for i in 0..prep.m {
                        ws.beta[i] -= ws.rows[i * nc + j] * u;
                    }
                }
            }
        }
        true
    }

    /// Reduced costs `rc_j = c_j − c_Bᵀ T_j` into the workspace buffer.
    fn reduced_costs(&mut self, cost: &[f64]) {
        let ws = &mut *self.ws;
        let nc = self.prep.ncols;
        ws.rc.copy_from_slice(cost);
        for i in 0..self.prep.m {
            let cb = cost[ws.basis[i]];
            if cb != 0.0 {
                let row = &ws.rows[i * nc..(i + 1) * nc];
                for (rcj, &t) in ws.rc.iter_mut().zip(row) {
                    *rcj -= cb * t;
                }
            }
        }
    }

    fn deadline_hit(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// One primal simplex iteration for the given costs. `allow_artificial`
    /// permits artificial columns to enter (phase 1 only).
    fn step(&mut self, cost: &[f64], allow_artificial: bool) -> Step {
        self.reduced_costs(cost);
        let prep = self.prep;
        let ws = &mut *self.ws;
        let nc = prep.ncols;
        let bland = ws.degenerate_streak >= DEGENERATE_STREAK;

        // Entering column: eligible if improving given its status.
        let mut entering: Option<(usize, bool)> = None; // (col, from_lower)
        let mut best = RC_TOL;
        for (j, &rcj) in ws.rc.iter().enumerate() {
            if ws.status[j] == Status::Basic {
                continue;
            }
            if !allow_artificial && j >= prep.art0 {
                continue;
            }
            let (eligible, from_lower, score) = match ws.status[j] {
                Status::Lower => (rcj < -RC_TOL, true, -rcj),
                Status::Upper => (rcj > RC_TOL, false, rcj),
                Status::Basic => unreachable!(),
            };
            if eligible {
                if bland {
                    entering = Some((j, from_lower));
                    break;
                }
                if score > best {
                    best = score;
                    entering = Some((j, from_lower));
                }
            }
        }
        let Some((q, from_lower)) = entering else {
            return Step::Converged;
        };

        // Ratio test.
        let mut t_limit = ws.upper[q]; // bound-flip distance
        let mut leaving: Option<(usize, Status)> = None; // (row, bound the leaver hits)
        for i in 0..prep.m {
            let c = ws.rows[i * nc + q];
            if c.abs() <= PIVOT_TOL {
                continue;
            }
            let ub_b = ws.upper[ws.basis[i]];
            // Movement t >= 0 changes basics by -t*c (from lower) or +t*c
            // (from upper).
            let (dist, hits) = if from_lower {
                if c > 0.0 {
                    (ws.beta[i] / c, Status::Lower)
                } else if ub_b.is_finite() {
                    ((ub_b - ws.beta[i]) / -c, Status::Upper)
                } else {
                    continue;
                }
            } else if c < 0.0 {
                (ws.beta[i] / -c, Status::Lower)
            } else if ub_b.is_finite() {
                ((ub_b - ws.beta[i]) / c, Status::Upper)
            } else {
                continue;
            };
            let dist = dist.max(0.0);
            let replace = match leaving {
                // Ties with the bound-flip distance keep the cheaper flip.
                None => dist < t_limit,
                Some((r, _)) => {
                    dist < t_limit - PIVOT_TOL
                        || ((dist - t_limit).abs() <= PIVOT_TOL
                            && bland
                            && ws.basis[i] < ws.basis[r])
                }
            };
            if replace {
                t_limit = t_limit.min(dist);
                leaving = Some((i, hits));
            }
        }

        if leaving.is_none() && t_limit.is_infinite() {
            return Step::Unbounded;
        }

        let t = t_limit;
        if t <= PIVOT_TOL {
            ws.degenerate_streak += 1;
        } else {
            ws.degenerate_streak = 0;
        }

        // Update basic values.
        for i in 0..prep.m {
            let c = ws.rows[i * nc + q];
            if from_lower {
                ws.beta[i] -= t * c;
            } else {
                ws.beta[i] += t * c;
            }
        }
        ws.pivots += 1;

        match leaving {
            None => {
                // Pure bound flip.
                ws.status[q] = if from_lower {
                    Status::Upper
                } else {
                    Status::Lower
                };
                Step::Moved
            }
            Some((r, hits)) => {
                // Pivot: q enters the basis in row r.
                let leaver = ws.basis[r];
                ws.status[leaver] = hits;
                let entering_value = if from_lower { t } else { ws.upper[q] - t };
                Self::eliminate(ws, nc, prep.m, r, q);
                ws.basis[r] = q;
                ws.status[q] = Status::Basic;
                ws.beta[r] = entering_value;
                Step::Moved
            }
        }
    }

    /// Row-reduces column `q` to the `r`-th identity column.
    fn eliminate(ws: &mut Workspace, nc: usize, m: usize, r: usize, q: usize) {
        let piv = ws.rows[r * nc + q];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small");
        let inv = 1.0 / piv;
        for x in ws.rows[r * nc..(r + 1) * nc].iter_mut() {
            *x *= inv;
        }
        ws.pivot_row.copy_from_slice(&ws.rows[r * nc..(r + 1) * nc]);
        for i in 0..m {
            if i == r {
                continue;
            }
            let f = ws.rows[i * nc + q];
            if f.abs() > 1e-12 {
                let row = &mut ws.rows[i * nc..(i + 1) * nc];
                for (x, p) in row.iter_mut().zip(&ws.pivot_row) {
                    *x -= f * p;
                }
                row[q] = 0.0; // clean cancellation
            }
        }
    }

    fn phase1(&mut self) -> Phase1 {
        let prep = self.prep;
        let nc = prep.ncols;
        if !self.ws.basis.iter().any(|&b| b >= prep.art0) {
            return Phase1::Feasible;
        }
        let mut cost = vec![0.0; nc];
        for cj in cost.iter_mut().skip(prep.art0) {
            *cj = 1.0;
        }
        let iter_limit = prep.iter_limit();
        let mut iters = 0u64;
        loop {
            match self.step(&cost, true) {
                Step::Converged => break,
                Step::Unbounded => break, // phase-1 objective is bounded below by 0
                Step::Moved => {}
            }
            iters += 1;
            if iters > iter_limit {
                return Phase1::Stalled;
            }
            if iters.is_multiple_of(64) && self.deadline_hit() {
                return Phase1::Stalled;
            }
        }
        let ws = &mut *self.ws;
        let infeas: f64 = (0..prep.m)
            .filter(|&i| ws.basis[i] >= prep.art0)
            .map(|i| ws.beta[i])
            .sum();
        if infeas > 1e-6 {
            return Phase1::Infeasible;
        }
        // Drive basic artificials (at zero) out of the basis where possible.
        for i in 0..prep.m {
            if ws.basis[i] < prep.art0 {
                continue;
            }
            let pivot_col = (0..prep.art0)
                .find(|&j| ws.status[j] != Status::Basic && ws.rows[i * nc + j].abs() > 1e-7);
            if let Some(q) = pivot_col {
                let leaver = ws.basis[i];
                ws.status[leaver] = Status::Lower;
                ws.upper[leaver] = 0.0;
                Self::eliminate(ws, nc, prep.m, i, q);
                ws.basis[i] = q;
                // Zero-displacement pivot: the solution point is unchanged,
                // so the entering variable keeps its current (bound) value.
                ws.beta[i] = match ws.status[q] {
                    Status::Lower => 0.0,
                    Status::Upper => ws.upper[q],
                    Status::Basic => unreachable!("entering column was nonbasic"),
                };
                ws.status[q] = Status::Basic;
            }
            // If no pivot column exists the row is redundant; the artificial
            // stays basic at zero and is clamped there.
        }
        // Clamp all artificials to zero so they never move again.
        for j in prep.art0..nc {
            ws.upper[j] = 0.0;
        }
        Phase1::Feasible
    }

    fn phase2(&mut self) -> Phase2 {
        let cost = self.prep.cost.clone();
        let iter_limit = self.prep.iter_limit();
        let mut iters = 0u64;
        loop {
            match self.step(&cost, false) {
                Step::Converged => return Phase2::Optimal,
                Step::Unbounded => return Phase2::Unbounded,
                Step::Moved => {}
            }
            iters += 1;
            if iters > iter_limit {
                return Phase2::Stalled;
            }
            if iters.is_multiple_of(64) && self.deadline_hit() {
                return Phase2::Stalled;
            }
        }
    }

    /// Bounded-variable dual simplex: starting from a dual-feasible basis
    /// (inherited from a phase-2-optimal parent), drives out primal bound
    /// violations one leaving row at a time while keeping the reduced costs
    /// sign-feasible.
    fn dual_simplex(&mut self) -> Dual {
        let prep = self.prep;
        let nc = prep.ncols;
        let iter_limit = prep.iter_limit();
        let mut iters = 0u64;
        loop {
            // Most-violated leaving row (deterministic: first on ties).
            let ws = &*self.ws;
            let mut leaving: Option<(usize, bool)> = None; // (row, below_lower)
            let mut worst = FEAS_TOL;
            for i in 0..prep.m {
                let b = ws.beta[i];
                let ub_b = ws.upper[ws.basis[i]];
                if -b > worst {
                    worst = -b;
                    leaving = Some((i, true));
                } else if ub_b.is_finite() && b - ub_b > worst {
                    worst = b - ub_b;
                    leaving = Some((i, false));
                }
            }
            let Some((r, below)) = leaving else {
                return Dual::PrimalFeasible;
            };

            self.reduced_costs(&prep.cost);
            let ws = &mut *self.ws;

            // Entering column: smallest dual ratio |rc_j| / |T_rj| among
            // sign-compatible nonbasic columns; ties break on the lowest
            // index for determinism.
            let mut entering: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for j in 0..prep.art0 {
                if ws.status[j] == Status::Basic {
                    continue;
                }
                let t = ws.rows[r * nc + j];
                if t.abs() <= PIVOT_TOL {
                    continue;
                }
                // Fixed columns (upper 0) cannot re-enter meaningfully.
                if ws.upper[j] <= 0.0 {
                    continue;
                }
                let compatible = match (below, ws.status[j]) {
                    (true, Status::Lower) => t < 0.0,
                    (true, Status::Upper) => t > 0.0,
                    (false, Status::Lower) => t > 0.0,
                    (false, Status::Upper) => t < 0.0,
                    (_, Status::Basic) => unreachable!(),
                };
                if !compatible {
                    continue;
                }
                let ratio = ws.rc[j].abs() / t.abs();
                if ratio < best_ratio - RC_TOL {
                    best_ratio = ratio;
                    entering = Some(j);
                }
            }
            let Some(q) = entering else {
                // No compatible column: the violated row cannot be repaired;
                // the LP is infeasible (dual unbounded).
                return Dual::Infeasible;
            };

            // Pivot: basis[r] leaves to the violated bound, q enters.
            let target = if below { 0.0 } else { ws.upper[ws.basis[r]] };
            let t_rq = ws.rows[r * nc + q];
            let delta = (ws.beta[r] - target) / t_rq;
            let q_old = match ws.status[q] {
                Status::Lower => 0.0,
                Status::Upper => ws.upper[q],
                Status::Basic => unreachable!(),
            };
            for i in 0..prep.m {
                if i != r {
                    ws.beta[i] -= ws.rows[i * nc + q] * delta;
                }
            }
            let leaver = ws.basis[r];
            ws.status[leaver] = if below { Status::Lower } else { Status::Upper };
            Self::eliminate(ws, nc, prep.m, r, q);
            ws.basis[r] = q;
            ws.status[q] = Status::Basic;
            ws.beta[r] = q_old + delta;
            ws.pivots += 1;

            iters += 1;
            if iters > iter_limit {
                return Dual::Stalled;
            }
            if iters.is_multiple_of(64) && self.deadline_hit() {
                return Dual::Stalled;
            }
        }
    }

    /// Recovers original-space structural values.
    fn extract(&mut self, lb: &[f64]) -> LpSolution {
        let prep = self.prep;
        let ws = &mut *self.ws;
        for x in ws.row_of.iter_mut() {
            *x = usize::MAX;
        }
        for (i, &b) in ws.basis.iter().enumerate() {
            ws.row_of[b] = i;
        }
        let mut values = Vec::with_capacity(prep.n);
        let mut objective = 0.0;
        for (j, &lo) in lb.iter().enumerate().take(prep.n) {
            let shifted = match ws.status[j] {
                Status::Lower => 0.0,
                Status::Upper => ws.upper[j],
                Status::Basic => ws.beta[ws.row_of[j]],
            };
            let v = lo + shifted;
            objective += prep.cost[j] * v;
            values.push(v);
        }
        LpSolution { values, objective }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation};

    fn assert_opt(outcome: LpOutcome, expected_obj: f64) -> LpSolution {
        match outcome {
            LpOutcome::Optimal(s) => {
                assert!(
                    (s.objective - expected_obj).abs() < 1e-6,
                    "objective {} != expected {expected_obj}",
                    s.objective
                );
                s
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn solves_basic_2d_lp() {
        // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 3, x,y >= 0.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 3.0, -1.0);
        let y = m.continuous("y", 0.0, 3.0, -2.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        let s = assert_opt(solve_lp(&m), -7.0);
        assert!((s.values[x.0] - 1.0).abs() < 1e-6);
        assert!((s.values[y.0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn handles_ge_and_eq_rows() {
        // min x + y  s.t.  x + y >= 3, x - y = 1  =>  x = 2, y = 1.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.continuous("y", 0.0, f64::INFINITY, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        m.constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = assert_opt(solve_lp(&m), 3.0);
        assert!((s.values[x.0] - 2.0).abs() < 1e-6);
        assert!((s.values[y.0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_lp(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, f64::INFINITY, -1.0);
        m.constraint([(x, -1.0)], Relation::Le, 0.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn respects_shifted_lower_bounds() {
        // min x  s.t.  x >= 0 with lb 5: optimum at the bound.
        let mut m = Model::new("t");
        let x = m.continuous("x", 5.0, 100.0, 1.0);
        let s = assert_opt(solve_lp(&m), 5.0);
        assert!((s.values[x.0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bound_flip_reaches_upper_bound() {
        // min -x with x in [2, 7] and no constraints: x = 7.
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 7.0, -1.0);
        let s = assert_opt(solve_lp(&m), -7.0);
        assert!((s.values[x.0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_infinite_is_unbounded() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, f64::INFINITY, -1.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x  s.t.  -x <= -3  (i.e. x >= 3).
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        m.constraint([(x, -1.0)], Relation::Le, -3.0);
        let s = assert_opt(solve_lp(&m), 3.0);
        assert!((s.values[x.0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_converges() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, -1.0);
        let y = m.continuous("y", 0.0, 10.0, -1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        m.constraint([(x, 2.0), (y, 2.0)], Relation::Le, 8.0);
        m.constraint([(x, 1.0)], Relation::Le, 4.0);
        m.constraint([(y, 1.0)], Relation::Le, 4.0);
        let s = assert_opt(solve_lp(&m), -4.0);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
    }

    #[test]
    fn equality_only_system_solves() {
        // x + y = 5, x - y = 1: unique point (3, 2); any objective.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 2.0);
        let y = m.continuous("y", 0.0, 10.0, 3.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        m.constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = assert_opt(solve_lp(&m), 12.0);
        assert!((s.values[x.0] - 3.0).abs() < 1e-6);
        assert!((s.values[y.0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows_do_not_break_phase1() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Eq, 4.0);
        m.constraint([(x, 2.0)], Relation::Eq, 8.0); // redundant copy
        let s = assert_opt(solve_lp(&m), 4.0);
        assert!((s.values[x.0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn crossing_branch_bounds_reports_infeasible() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, 10.0, 1.0);
        assert_eq!(
            solve_lp_with_bounds(&m, &[5.0], &[4.0]),
            LpOutcome::Infeasible
        );
    }

    #[test]
    fn big_m_disjunction_relaxation() {
        // Classic big-M pair: s2 >= e1 - M(1-k), s1 >= e2 - Mk. The LP
        // relaxation must be feasible and bounded.
        let mut m = Model::new("t");
        let s1 = m.continuous("s1", 0.0, 1e4, 1.0);
        let s2 = m.continuous("s2", 0.0, 1e4, 1.0);
        let k = m.continuous("k", 0.0, 1.0, 0.0);
        const M: f64 = 1e4;
        // s2 - s1 + M*k >= 3  and  s1 - s2 - M*k >= 2 - M
        m.constraint([(s2, 1.0), (s1, -1.0), (k, M)], Relation::Ge, 3.0);
        m.constraint([(s1, 1.0), (s2, -1.0), (k, -M)], Relation::Ge, 2.0 - M);
        match solve_lp(&m) {
            LpOutcome::Optimal(s) => {
                assert!(m.check_feasible(&s.values, 1e-5).is_ok());
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Warm-start path
    // ------------------------------------------------------------------

    /// A small mixed model with inequality, equality, and bound structure.
    fn warm_model() -> (Model, Vec<crate::VarId>) {
        let mut m = Model::new("warm");
        let x = m.continuous("x", 0.0, 6.0, -1.0);
        let y = m.continuous("y", 0.0, 6.0, -2.0);
        let z = m.continuous("z", 0.0, 6.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0), (z, -1.0)], Relation::Le, 5.0);
        m.constraint([(x, 1.0), (y, -1.0)], Relation::Ge, -3.0);
        m.constraint([(x, 1.0), (y, 1.0), (z, 1.0)], Relation::Le, 9.0);
        (m, vec![x, y, z])
    }

    fn bounds_of(m: &Model) -> (Vec<f64>, Vec<f64>) {
        let lb = (0..m.num_vars()).map(|j| m.vars[j].lb).collect();
        let ub = (0..m.num_vars()).map(|j| m.vars[j].ub).collect();
        (lb, ub)
    }

    /// Warm solves after each single-bound tightening must agree with the
    /// cold solver — the exact branch-and-bound access pattern.
    #[test]
    fn warm_restart_matches_cold_after_bound_changes() {
        let (m, vars) = warm_model();
        let prep = Prepared::new(&m);
        let mut ws = Workspace::new();
        let (lb0, ub0) = bounds_of(&m);
        let root = match solve_cold(&prep, &mut ws, &lb0, &ub0, None) {
            LpOutcome::Optimal(s) => s,
            o => panic!("root not optimal: {o:?}"),
        };
        let basis = ws.snapshot_basis();

        for &v in &vars {
            for (dl, du) in [(1.0, f64::INFINITY), (0.0, 2.0), (2.0, 2.0)] {
                let mut lb = lb0.clone();
                let mut ub = ub0.clone();
                lb[v.0] = lb[v.0].max(dl);
                if du.is_finite() {
                    ub[v.0] = ub[v.0].min(du);
                }
                let mut ws_cold = Workspace::new();
                let cold = solve_cold(&prep, &mut ws_cold, &lb, &ub, None);
                let warm = solve_warm(&prep, &mut ws, &lb, &ub, &basis, None)
                    .unwrap_or_else(|_| panic!("warm solve fell back for {v:?}"));
                match (&cold, &warm) {
                    (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
                        assert!(
                            (a.objective - b.objective).abs() < 1e-6,
                            "cold {} != warm {} (var {v:?}, root {})",
                            a.objective,
                            b.objective,
                            root.objective
                        );
                    }
                    (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                    other => panic!("cold/warm disagree: {other:?}"),
                }
            }
        }
    }

    /// A child whose branched bound removes all feasible points must be
    /// recognized by the dual simplex, not mislabeled optimal.
    #[test]
    fn warm_restart_detects_infeasible_child() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        let y = m.continuous("y", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 2.0);
        let prep = Prepared::new(&m);
        let mut ws = Workspace::new();
        let (lb0, ub0) = bounds_of(&m);
        assert!(matches!(
            solve_cold(&prep, &mut ws, &lb0, &ub0, None),
            LpOutcome::Optimal(_)
        ));
        let basis = ws.snapshot_basis();
        // x >= 3 and y >= 3 violates x + y <= 4.
        let lb = vec![3.0, 3.0];
        let outcome = solve_warm(&prep, &mut ws, &lb, &ub0, &basis, None)
            .unwrap_or_else(|_| panic!("warm solve fell back"));
        assert_eq!(outcome, LpOutcome::Infeasible);
    }

    /// Repeated warm solves through one workspace must not leak state
    /// between solves (buffers are reused, not reallocated).
    #[test]
    fn workspace_reuse_is_stateless() {
        let (m, vars) = warm_model();
        let prep = Prepared::new(&m);
        let mut ws = Workspace::new();
        let (lb0, ub0) = bounds_of(&m);
        let first = match solve_cold(&prep, &mut ws, &lb0, &ub0, None) {
            LpOutcome::Optimal(s) => s.objective,
            o => panic!("unexpected {o:?}"),
        };
        let basis = ws.snapshot_basis();
        let x = vars[0];
        let mut ub = ub0.clone();
        ub[x.0] = 1.0;
        // Interleave warm and cold solves through the same workspace.
        for _ in 0..3 {
            match solve_warm(&prep, &mut ws, &lb0, &ub, &basis, None) {
                Ok(LpOutcome::Optimal(_)) => {}
                o => panic!("warm solve failed: {:?}", o.is_err()),
            }
            match solve_cold(&prep, &mut ws, &lb0, &ub0, None) {
                LpOutcome::Optimal(s) => {
                    assert!((s.objective - first).abs() < 1e-9);
                }
                o => panic!("unexpected {o:?}"),
            }
        }
    }

    /// The workspace pivot counter increases monotonically across solves.
    #[test]
    fn pivot_counter_accumulates() {
        let (m, _) = warm_model();
        let prep = Prepared::new(&m);
        let mut ws = Workspace::new();
        let (lb0, ub0) = bounds_of(&m);
        let _ = solve_cold(&prep, &mut ws, &lb0, &ub0, None);
        let after_first = ws.pivots;
        assert!(after_first > 0, "an LP with pivots recorded none");
        let _ = solve_cold(&prep, &mut ws, &lb0, &ub0, None);
        assert!(ws.pivots >= 2 * after_first);
    }
}
