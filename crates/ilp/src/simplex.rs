//! Bounded-variable two-phase primal simplex over a dense tableau.
//!
//! Variable bounds are handled natively (nonbasic variables rest at either
//! bound; the ratio test includes bound flips), which keeps binary-heavy
//! scheduling models — the PathDriver-Wash workload — at half the row count
//! of the textbook formulation.

use std::time::Instant;

use crate::model::{Model, Relation};
use crate::FEAS_TOL;

/// A solved LP relaxation: values in the *original* variable space plus the
/// objective.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Value per variable, indexed by [`VarId`](crate::VarId).
    pub values: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal basic solution was found.
    Optimal(LpSolution),
    /// The constraints admit no solution within the bounds.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit before convergence (numerically cycling
    /// or extremely degenerate instance). Treated as "unknown" by callers.
    Stalled,
}

/// Solves the LP relaxation of `model` (integrality dropped) with the
/// model's own bounds.
pub fn solve_lp(model: &Model) -> LpOutcome {
    let lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
    let ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
    solve_lp_with_bounds(model, &lb, &ub)
}

/// Solves the LP relaxation with overridden variable bounds (used by
/// branch-and-bound).
pub fn solve_lp_with_bounds(model: &Model, lb: &[f64], ub: &[f64]) -> LpOutcome {
    solve_lp_with_deadline(model, lb, ub, None)
}

/// Like [`solve_lp_with_bounds`], aborting with [`LpOutcome::Stalled`] once
/// `deadline` passes — a single large LP must not blow through the MILP's
/// wall-clock budget.
pub fn solve_lp_with_deadline(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    deadline: Option<Instant>,
) -> LpOutcome {
    // Quick bound sanity: branching can cross bounds (floor < lb).
    for j in 0..model.num_vars() {
        if lb[j] > ub[j] + FEAS_TOL {
            return LpOutcome::Infeasible;
        }
    }
    let mut t = Tableau::build(model, lb, ub);
    t.deadline = deadline;
    match t.phase1() {
        Phase1::Feasible => {}
        Phase1::Infeasible => return LpOutcome::Infeasible,
        Phase1::Stalled => return LpOutcome::Stalled,
    }
    match t.phase2() {
        Phase2::Optimal => {}
        Phase2::Unbounded => return LpOutcome::Unbounded,
        Phase2::Stalled => return LpOutcome::Stalled,
    }
    let values = t.extract(model, lb);
    let objective = model.objective_value(&values);
    LpOutcome::Optimal(LpSolution { values, objective })
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Basic,
    Lower,
    Upper,
}

enum Phase1 {
    Feasible,
    Infeasible,
    Stalled,
}

enum Phase2 {
    Optimal,
    Unbounded,
    Stalled,
}

enum Step {
    Moved,
    Converged,
    Unbounded,
}

const RC_TOL: f64 = 1e-9;
const PIVOT_TOL: f64 = 1e-9;
const DEGENERATE_STREAK: u32 = 60;

struct Tableau {
    /// Dense rows `B⁻¹A`, length `ncols` each.
    rows: Vec<Vec<f64>>,
    /// Current value of the basic variable of each row.
    beta: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Status per column.
    status: Vec<Status>,
    /// Shifted upper bound per column (lower bound is 0 after shifting).
    upper: Vec<f64>,
    /// Phase-2 cost per column (structural costs; slacks/artificials 0).
    cost: Vec<f64>,
    /// Columns that are artificials (banned from entering in phase 2).
    artificial: Vec<bool>,
    n_structural: usize,
    degenerate_streak: u32,
    iter_limit: u64,
    deadline: Option<Instant>,
}

impl Tableau {
    fn build(model: &Model, lb: &[f64], ub: &[f64]) -> Self {
        let n = model.num_vars();
        let m = model.num_constraints();

        // Column layout: [structurals | slacks (one per Le/Ge row) | artificials].
        let n_slacks = model
            .constraints
            .iter()
            .filter(|c| c.rel != Relation::Eq)
            .count();
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        let mut slack_coef: Vec<Option<(usize, f64)>> = Vec::with_capacity(m);

        let mut next_slack = n;
        for c in &model.constraints {
            let mut row = vec![0.0; n + n_slacks];
            for &(v, coef) in c.expr.terms() {
                row[v.0] += coef;
            }
            // Shift structurals to start at 0: rhs -= a·lb.
            let mut r = c.rhs;
            for (j, item) in row.iter().enumerate().take(n) {
                r -= item * lb[j];
            }
            let sc = match c.rel {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    let s = Some((next_slack, 1.0));
                    next_slack += 1;
                    s
                }
                Relation::Ge => {
                    row[next_slack] = -1.0;
                    let s = Some((next_slack, -1.0));
                    next_slack += 1;
                    s
                }
                Relation::Eq => None,
            };
            // Normalize rhs >= 0.
            if r < 0.0 {
                for x in row.iter_mut() {
                    *x = -*x;
                }
                r = -r;
                slack_coef.push(sc.map(|(j, co)| (j, -co)));
            } else {
                slack_coef.push(sc);
            }
            rows.push(row);
            rhs.push(r);
        }

        // Decide basis per row: a +1 slack if available, else an artificial.
        let mut artificial_cols = 0;
        let needs_artificial: Vec<bool> = slack_coef
            .iter()
            .map(|sc| !matches!(sc, Some((_, co)) if *co > 0.0))
            .collect();
        for need in &needs_artificial {
            if *need {
                artificial_cols += 1;
            }
        }
        let ncols = n + n_slacks + artificial_cols;
        for row in rows.iter_mut() {
            row.resize(ncols, 0.0);
        }

        let mut upper = vec![f64::INFINITY; ncols];
        for j in 0..n {
            upper[j] = ub[j] - lb[j];
        }
        let mut status = vec![Status::Lower; ncols];
        let mut basis = Vec::with_capacity(m);
        let mut artificial = vec![false; ncols];
        let mut next_art = n + n_slacks;
        for (i, need) in needs_artificial.iter().enumerate() {
            if *need {
                rows[i][next_art] = 1.0;
                artificial[next_art] = true;
                basis.push(next_art);
                status[next_art] = Status::Basic;
                next_art += 1;
            } else {
                let (j, _) = slack_coef[i].expect("row without artificial has a +1 slack");
                basis.push(j);
                status[j] = Status::Basic;
            }
        }

        let mut cost = vec![0.0; ncols];
        for (j, c) in cost.iter_mut().enumerate().take(n) {
            *c = model.vars[j].obj;
        }

        let iter_limit = 200 * (m as u64 + ncols as u64) + 2_000;
        Tableau {
            deadline: None,
            beta: rhs,
            rows,
            basis,
            status,
            upper,
            cost,
            artificial,
            n_structural: n,
            degenerate_streak: 0,
            iter_limit,
        }
    }

    /// Reduced costs for a cost vector: `rc_j = c_j − c_Bᵀ T_j`.
    fn reduced_costs(&self, cost: &[f64]) -> Vec<f64> {
        let m = self.rows.len();
        let ncols = cost.len();
        let mut rc = cost.to_vec();
        for i in 0..m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.rows[i];
                for (j, rcj) in rc.iter_mut().enumerate().take(ncols) {
                    *rcj -= cb * row[j];
                }
            }
        }
        rc
    }

    /// One simplex iteration for the given costs. `allow_artificial` permits
    /// artificial columns to enter (phase 1 only).
    fn step(&mut self, cost: &[f64], allow_artificial: bool) -> Step {
        let rc = self.reduced_costs(cost);
        let bland = self.degenerate_streak >= DEGENERATE_STREAK;

        // Entering column: eligible if improving given its status.
        let mut entering: Option<(usize, bool)> = None; // (col, from_lower)
        let mut best = RC_TOL;
        for (j, &rcj) in rc.iter().enumerate() {
            if self.status[j] == Status::Basic {
                continue;
            }
            if !allow_artificial && self.artificial[j] {
                continue;
            }
            let (eligible, from_lower, score) = match self.status[j] {
                Status::Lower => (rcj < -RC_TOL, true, -rcj),
                Status::Upper => (rcj > RC_TOL, false, rcj),
                Status::Basic => unreachable!(),
            };
            if eligible {
                if bland {
                    entering = Some((j, from_lower));
                    break;
                }
                if score > best {
                    best = score;
                    entering = Some((j, from_lower));
                }
            }
        }
        let Some((q, from_lower)) = entering else {
            return Step::Converged;
        };

        // Ratio test.
        let mut t_limit = self.upper[q]; // bound-flip distance
        let mut leaving: Option<(usize, Status)> = None; // (row, bound the leaver hits)
        for i in 0..self.rows.len() {
            let c = self.rows[i][q];
            if c.abs() <= PIVOT_TOL {
                continue;
            }
            let ub_b = self.upper[self.basis[i]];
            // Movement t >= 0 changes basics by -t*c (from lower) or +t*c
            // (from upper).
            let (dist, hits) = if from_lower {
                if c > 0.0 {
                    (self.beta[i] / c, Status::Lower)
                } else if ub_b.is_finite() {
                    ((ub_b - self.beta[i]) / -c, Status::Upper)
                } else {
                    continue;
                }
            } else if c < 0.0 {
                (self.beta[i] / -c, Status::Lower)
            } else if ub_b.is_finite() {
                ((ub_b - self.beta[i]) / c, Status::Upper)
            } else {
                continue;
            };
            let dist = dist.max(0.0);
            let replace = match leaving {
                // Ties with the bound-flip distance keep the cheaper flip.
                None => dist < t_limit,
                Some((r, _)) => {
                    dist < t_limit - PIVOT_TOL
                        || ((dist - t_limit).abs() <= PIVOT_TOL
                            && bland
                            && self.basis[i] < self.basis[r])
                }
            };
            if replace {
                t_limit = t_limit.min(dist);
                leaving = Some((i, hits));
            }
        }

        if leaving.is_none() && t_limit.is_infinite() {
            return Step::Unbounded;
        }

        let t = t_limit;
        if t <= PIVOT_TOL {
            self.degenerate_streak += 1;
        } else {
            self.degenerate_streak = 0;
        }

        // Update basic values.
        for i in 0..self.rows.len() {
            let c = self.rows[i][q];
            if from_lower {
                self.beta[i] -= t * c;
            } else {
                self.beta[i] += t * c;
            }
        }

        match leaving {
            None => {
                // Pure bound flip.
                self.status[q] = if from_lower { Status::Upper } else { Status::Lower };
                Step::Moved
            }
            Some((r, hits)) => {
                // Pivot: q enters the basis in row r.
                let leaver = self.basis[r];
                self.status[leaver] = hits;
                let entering_value = if from_lower { t } else { self.upper[q] - t };
                let piv = self.rows[r][q];
                debug_assert!(piv.abs() > PIVOT_TOL, "pivot element too small");
                let inv = 1.0 / piv;
                for x in self.rows[r].iter_mut() {
                    *x *= inv;
                }
                let pivot_row = self.rows[r].clone();
                for i in 0..self.rows.len() {
                    if i == r {
                        continue;
                    }
                    let f = self.rows[i][q];
                    if f.abs() > 1e-12 {
                        let row = &mut self.rows[i];
                        for (x, p) in row.iter_mut().zip(&pivot_row) {
                            *x -= f * p;
                        }
                        row[q] = 0.0; // clean cancellation
                    }
                }
                self.basis[r] = q;
                self.status[q] = Status::Basic;
                self.beta[r] = entering_value;
                Step::Moved
            }
        }
    }

    fn phase1(&mut self) -> Phase1 {
        if !self.artificial.iter().any(|&a| a) {
            return Phase1::Feasible;
        }
        let cost: Vec<f64> = self
            .artificial
            .iter()
            .map(|&a| if a { 1.0 } else { 0.0 })
            .collect();
        let mut iters = 0u64;
        loop {
            match self.step(&cost, true) {
                Step::Converged => break,
                Step::Unbounded => break, // phase-1 objective is bounded below by 0
                Step::Moved => {}
            }
            iters += 1;
            if iters > self.iter_limit {
                return Phase1::Stalled;
            }
            if iters.is_multiple_of(64) {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return Phase1::Stalled;
                    }
                }
            }
        }
        let infeas: f64 = (0..self.rows.len())
            .filter(|&i| self.artificial[self.basis[i]])
            .map(|i| self.beta[i])
            .sum();
        if infeas > 1e-6 {
            return Phase1::Infeasible;
        }
        // Drive basic artificials (at zero) out of the basis where possible.
        for i in 0..self.rows.len() {
            if !self.artificial[self.basis[i]] {
                continue;
            }
            let pivot_col = (0..self.n_structural + self.slack_count())
                .find(|&j| self.status[j] != Status::Basic && self.rows[i][j].abs() > 1e-7);
            if let Some(q) = pivot_col {
                let leaver = self.basis[i];
                self.status[leaver] = Status::Lower;
                self.upper[leaver] = 0.0;
                let piv = self.rows[i][q];
                let inv = 1.0 / piv;
                for x in self.rows[i].iter_mut() {
                    *x *= inv;
                }
                let pivot_row = self.rows[i].clone();
                for k in 0..self.rows.len() {
                    if k == i {
                        continue;
                    }
                    let f = self.rows[k][q];
                    if f.abs() > 1e-12 {
                        let row = &mut self.rows[k];
                        for (x, p) in row.iter_mut().zip(&pivot_row) {
                            *x -= f * p;
                        }
                        row[q] = 0.0;
                    }
                }
                self.basis[i] = q;
                // Zero-displacement pivot: the solution point is unchanged,
                // so the entering variable keeps its current (bound) value.
                self.beta[i] = match self.status[q] {
                    Status::Lower => 0.0,
                    Status::Upper => self.upper[q],
                    Status::Basic => unreachable!("entering column was nonbasic"),
                };
                self.status[q] = Status::Basic;
            }
            // If no pivot column exists the row is redundant; the artificial
            // stays basic at zero and is clamped there.
        }
        // Clamp all artificials to zero so they never move again.
        for j in 0..self.upper.len() {
            if self.artificial[j] {
                self.upper[j] = 0.0;
            }
        }
        Phase1::Feasible
    }

    fn slack_count(&self) -> usize {
        self.upper.len()
            - self.n_structural
            - self.artificial.iter().filter(|&&a| a).count()
    }

    fn phase2(&mut self) -> Phase2 {
        let cost = self.cost.clone();
        let mut iters = 0u64;
        loop {
            match self.step(&cost, false) {
                Step::Converged => return Phase2::Optimal,
                Step::Unbounded => return Phase2::Unbounded,
                Step::Moved => {}
            }
            iters += 1;
            if iters > self.iter_limit {
                return Phase2::Stalled;
            }
            if iters.is_multiple_of(64) {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return Phase2::Stalled;
                    }
                }
            }
        }
    }

    /// Recovers original-space structural values.
    fn extract(&self, model: &Model, lb: &[f64]) -> Vec<f64> {
        let n = model.num_vars();
        let mut shifted = vec![0.0; n];
        for (j, out) in shifted.iter_mut().enumerate().take(n) {
            *out = match self.status[j] {
                Status::Lower => 0.0,
                Status::Upper => self.upper[j],
                Status::Basic => {
                    let row = self
                        .basis
                        .iter()
                        .position(|&b| b == j)
                        .expect("basic var has a row");
                    self.beta[row]
                }
            };
        }
        (0..n).map(|j| lb[j] + shifted[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation};

    fn assert_opt(outcome: LpOutcome, expected_obj: f64) -> LpSolution {
        match outcome {
            LpOutcome::Optimal(s) => {
                assert!(
                    (s.objective - expected_obj).abs() < 1e-6,
                    "objective {} != expected {expected_obj}",
                    s.objective
                );
                s
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn solves_basic_2d_lp() {
        // min -x - 2y  s.t.  x + y <= 4, x <= 3, y <= 3, x,y >= 0.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 3.0, -1.0);
        let y = m.continuous("y", 0.0, 3.0, -2.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        let s = assert_opt(solve_lp(&m), -7.0);
        assert!((s.values[x.0] - 1.0).abs() < 1e-6);
        assert!((s.values[y.0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn handles_ge_and_eq_rows() {
        // min x + y  s.t.  x + y >= 3, x - y = 1  =>  x = 2, y = 1.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, f64::INFINITY, 1.0);
        let y = m.continuous("y", 0.0, f64::INFINITY, 1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        m.constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = assert_opt(solve_lp(&m), 3.0);
        assert!((s.values[x.0] - 2.0).abs() < 1e-6);
        assert!((s.values[y.0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 1.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_lp(&m), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, f64::INFINITY, -1.0);
        m.constraint([(x, -1.0)], Relation::Le, 0.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn respects_shifted_lower_bounds() {
        // min x  s.t.  x >= 0 with lb 5: optimum at the bound.
        let mut m = Model::new("t");
        let x = m.continuous("x", 5.0, 100.0, 1.0);
        let s = assert_opt(solve_lp(&m), 5.0);
        assert!((s.values[x.0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bound_flip_reaches_upper_bound() {
        // min -x with x in [2, 7] and no constraints: x = 7.
        let mut m = Model::new("t");
        let x = m.continuous("x", 2.0, 7.0, -1.0);
        let s = assert_opt(solve_lp(&m), -7.0);
        assert!((s.values[x.0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_infinite_is_unbounded() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, f64::INFINITY, -1.0);
        assert_eq!(solve_lp(&m), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // min x  s.t.  -x <= -3  (i.e. x >= 3).
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        m.constraint([(x, -1.0)], Relation::Le, -3.0);
        let s = assert_opt(solve_lp(&m), 3.0);
        assert!((s.values[x.0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_converges() {
        // Multiple redundant constraints through the optimum.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, -1.0);
        let y = m.continuous("y", 0.0, 10.0, -1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        m.constraint([(x, 2.0), (y, 2.0)], Relation::Le, 8.0);
        m.constraint([(x, 1.0)], Relation::Le, 4.0);
        m.constraint([(y, 1.0)], Relation::Le, 4.0);
        let s = assert_opt(solve_lp(&m), -4.0);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
    }

    #[test]
    fn equality_only_system_solves() {
        // x + y = 5, x - y = 1: unique point (3, 2); any objective.
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 2.0);
        let y = m.continuous("y", 0.0, 10.0, 3.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        m.constraint([(x, 1.0), (y, -1.0)], Relation::Eq, 1.0);
        let s = assert_opt(solve_lp(&m), 12.0);
        assert!((s.values[x.0] - 3.0).abs() < 1e-6);
        assert!((s.values[y.0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows_do_not_break_phase1() {
        let mut m = Model::new("t");
        let x = m.continuous("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 1.0)], Relation::Eq, 4.0);
        m.constraint([(x, 2.0)], Relation::Eq, 8.0); // redundant copy
        let s = assert_opt(solve_lp(&m), 4.0);
        assert!((s.values[x.0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn crossing_branch_bounds_reports_infeasible() {
        let mut m = Model::new("t");
        let _x = m.continuous("x", 0.0, 10.0, 1.0);
        assert_eq!(
            solve_lp_with_bounds(&m, &[5.0], &[4.0]),
            LpOutcome::Infeasible
        );
    }

    #[test]
    fn big_m_disjunction_relaxation() {
        // Classic big-M pair: s2 >= e1 - M(1-k), s1 >= e2 - Mk. The LP
        // relaxation must be feasible and bounded.
        let mut m = Model::new("t");
        let s1 = m.continuous("s1", 0.0, 1e4, 1.0);
        let s2 = m.continuous("s2", 0.0, 1e4, 1.0);
        let k = m.continuous("k", 0.0, 1.0, 0.0);
        const M: f64 = 1e4;
        // s2 - s1 + M*k >= 3  and  s1 - s2 - M*k >= 2 - M
        m.constraint([(s2, 1.0), (s1, -1.0), (k, M)], Relation::Ge, 3.0);
        m.constraint([(s1, 1.0), (s2, -1.0), (k, -M)], Relation::Ge, 2.0 - M);
        match solve_lp(&m) {
            LpOutcome::Optimal(s) => {
                assert!(m.check_feasible(&s.values, 1e-5).is_ok());
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
