//! Property-based tests: the MILP solver against brute-force enumeration.

use std::time::Duration;

use proptest::prelude::*;

use pdw_ilp::{solve, solve_lp, LpOutcome, Model, Relation, SolveOptions};

/// A small random binary program described by plain data.
#[derive(Debug, Clone)]
struct BinaryProgram {
    num_vars: usize,
    objective: Vec<i32>,
    constraints: Vec<(Vec<i32>, u8, i32)>, // coeffs, relation tag, rhs
}

fn relation(tag: u8) -> Relation {
    match tag % 3 {
        0 => Relation::Le,
        1 => Relation::Ge,
        _ => Relation::Eq,
    }
}

fn build(p: &BinaryProgram) -> (Model, Vec<pdw_ilp::VarId>) {
    let mut m = Model::new("prop");
    let vars: Vec<_> = (0..p.num_vars)
        .map(|j| m.binary(&format!("b{j}"), p.objective[j] as f64))
        .collect();
    for (coeffs, tag, rhs) in &p.constraints {
        let expr: Vec<_> = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        m.constraint(expr, relation(*tag), *rhs as f64);
    }
    (m, vars)
}

/// Exhaustive optimum over all 2^n assignments; `None` if infeasible.
fn brute_force(p: &BinaryProgram) -> Option<f64> {
    let (m, _) = build(p);
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << p.num_vars) {
        let assign: Vec<f64> = (0..p.num_vars).map(|j| ((mask >> j) & 1) as f64).collect();
        if m.check_feasible(&assign, 1e-9).is_ok() {
            let obj = m.objective_value(&assign);
            if best.is_none_or(|b| obj < b) {
                best = Some(obj);
            }
        }
    }
    best
}

fn program_strategy() -> impl Strategy<Value = BinaryProgram> {
    (2usize..=6).prop_flat_map(|n| {
        let obj = proptest::collection::vec(-9i32..=9, n);
        let cons = proptest::collection::vec(
            (
                proptest::collection::vec(-4i32..=4, n),
                any::<u8>(),
                -6i32..=10,
            ),
            1..=5,
        );
        (obj, cons).prop_map(move |(objective, constraints)| BinaryProgram {
            num_vars: n,
            objective,
            constraints,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Branch-and-bound agrees with brute force on feasibility and optimum.
    #[test]
    fn milp_matches_brute_force(p in program_strategy()) {
        let (m, _) = build(&p);
        let expected = brute_force(&p);
        let opts = SolveOptions { time_limit: Duration::from_secs(20), ..Default::default() };
        match (solve(&m, &opts), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert!(m.check_feasible(&sol.values, 1e-6).is_ok(),
                    "returned solution infeasible");
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "objective {} != brute-force {best}", sol.objective);
            }
            (Err(pdw_ilp::MilpError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "solver {got:?} vs brute force {want:?}"),
        }
    }

    /// The reported objective is invariant under the thread count: the
    /// search prunes conservatively, so 1-, 2-, and 4-thread runs of the
    /// same model prove the same optimum (or the same infeasibility).
    #[test]
    fn objective_is_thread_count_invariant(p in program_strategy()) {
        let (m, _) = build(&p);
        let opts = |threads| SolveOptions {
            time_limit: Duration::from_secs(20),
            threads,
            ..Default::default()
        };
        let reference = solve(&m, &opts(1));
        for threads in [2, 4] {
            match (&reference, solve(&m, &opts(threads))) {
                (Ok(a), Ok(b)) => prop_assert!(
                    (a.objective - b.objective).abs() < 1e-9,
                    "threads={threads}: objective {} != single-thread {}",
                    b.objective,
                    a.objective
                ),
                (Err(ea), Err(eb)) => prop_assert!(
                    *ea == eb,
                    "threads={threads}: error {eb:?} != single-thread {ea:?}"
                ),
                (a, b) => prop_assert!(
                    false,
                    "threads={threads}: outcome {b:?} != single-thread {a:?}"
                ),
            }
        }
    }

    /// Any optimal LP relaxation solution satisfies the model, and bounds
    /// the MILP optimum from below.
    #[test]
    fn lp_relaxation_is_feasible_and_bounds_milp(p in program_strategy()) {
        let (m, _) = build(&p);
        if let LpOutcome::Optimal(lp) = solve_lp(&m) {
            // Integrality dropped: only bounds + constraints must hold.
            let relaxed_check = {
                let mut ok = true;
                for (j, v) in lp.values.iter().enumerate() {
                    if *v < -1e-6 || *v > 1.0 + 1e-6 {
                        ok = false;
                        let _ = j;
                    }
                }
                ok
            };
            prop_assert!(relaxed_check, "LP values outside [0,1]: {:?}", lp.values);
            if let Some(best) = brute_force(&p) {
                prop_assert!(lp.objective <= best + 1e-6,
                    "LP bound {} above integer optimum {best}", lp.objective);
            }
        }
    }
}
