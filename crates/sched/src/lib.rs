//! Task, flow-path, and schedule model shared across the PathDriver-Wash
//! pipeline.
//!
//! The synthesis flow (`pdw-synth`) produces a [`Schedule`]: the set of
//! scheduled biochemical operations plus every fluidic task — reagent
//! injections, result transports (`p_{j,i,1}` in the paper), excess-fluid
//! removals (`p_{j,i,2}`), waste/output removals, and (after wash
//! optimization) wash operations — each with a complete port-to-port
//! [`FlowPath`](pdw_biochip::FlowPath) and a time window.
//!
//! Both wash optimizers (PathDriver-Wash and the DAWO baseline) consume and
//! produce this representation, and the simulator (`pdw-sim`) validates and
//! measures it.
//!
//! # Example
//!
//! ```
//! use pdw_sched::{Schedule, Task, TaskKind};
//! use pdw_biochip::{Coord, FlowPath};
//! use pdw_assay::FluidType;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let path = FlowPath::new(vec![Coord::new(0, 0), Coord::new(1, 0)])?;
//! let mut schedule = Schedule::new();
//! let id = schedule.push_task(Task::new(
//!     TaskKind::Wash { targets: vec![Coord::new(1, 0)] },
//!     path,
//!     10,
//!     3,
//!     FluidType::BUFFER,
//! ));
//! assert_eq!(schedule.task(id).end(), 13);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod schedule;
mod task;

pub use schedule::{Schedule, ScheduledOp};
pub use task::{Task, TaskId, TaskKind};

/// Scheduling time in whole seconds (alias of [`pdw_assay::Seconds`]).
pub type Time = pdw_assay::Seconds;

/// How many grid cells a fluid front traverses per second
/// (`FLOW_VELOCITY_MM_S / CELL_PITCH_MM`).
pub const CELLS_PER_SECOND: usize =
    (pdw_biochip::FLOW_VELOCITY_MM_S / pdw_biochip::CELL_PITCH_MM) as usize;

/// Duration of a fluid movement along a path of `path_len` cells, in whole
/// seconds (at least one).
pub fn flow_duration(path_len: usize) -> Time {
    (path_len.div_ceil(CELLS_PER_SECOND)).max(1) as Time
}

#[cfg(test)]
mod timing_tests {
    use super::flow_duration;

    #[test]
    fn flow_duration_rounds_up_and_floors_at_one() {
        assert_eq!(flow_duration(1), 1);
        assert_eq!(flow_duration(5), 1);
        assert_eq!(flow_duration(6), 2);
        assert_eq!(flow_duration(23), 5);
    }
}
