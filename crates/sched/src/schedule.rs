//! The schedule: scheduled operations plus fluidic tasks.

use serde::{Deserialize, Serialize};
use std::fmt;

use pdw_assay::OpId;
use pdw_biochip::DeviceId;

use crate::task::{Task, TaskId};
use crate::Time;

/// A biochemical operation bound to a device and scheduled in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// The device executing it.
    pub device: DeviceId,
    /// Start time `t^s_{o_i}`.
    pub start: Time,
    /// Execution duration (≥ `t(o_i)`, Eq. 1).
    pub duration: Time,
}

impl ScheduledOp {
    /// End time `t^e = t^s + duration`.
    pub fn end(&self) -> Time {
        self.start + self.duration
    }
}

/// A complete assay execution plan: operation placements/times plus every
/// fluidic task with its flow path and time window.
///
/// The schedule is an ordinary mutable data structure — wash optimizers
/// shift task start times, insert wash tasks, and delete excess-removal
/// tasks that were integrated into washes. Whether a schedule is *valid*
/// (dependency, exclusivity, and conflict constraints) is checked by the
/// simulator crate, not enforced here.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    tasks: Vec<Option<Task>>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a scheduled operation.
    pub fn push_op(&mut self, op: ScheduledOp) {
        self.ops.push(op);
    }

    /// All scheduled operations.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Mutable access to the scheduled operations (for rescheduling).
    pub fn ops_mut(&mut self) -> &mut [ScheduledOp] {
        &mut self.ops
    }

    /// Finds the scheduled instance of operation `op`.
    pub fn scheduled_op(&self, op: OpId) -> Option<&ScheduledOp> {
        self.ops.iter().find(|s| s.op == op)
    }

    /// Adds a task and returns its id. Ids are stable under removal.
    pub fn push_task(&mut self, task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Some(task));
        id
    }

    /// Looks up a task by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the task was removed.
    pub fn task(&self, id: TaskId) -> &Task {
        self.tasks[id.0 as usize]
            .as_ref()
            .expect("task was removed from the schedule")
    }

    /// Mutable lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the task was removed.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        self.tasks[id.0 as usize]
            .as_mut()
            .expect("task was removed from the schedule")
    }

    /// Returns the task if it exists and was not removed.
    pub fn get_task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.0 as usize).and_then(|t| t.as_ref())
    }

    /// Removes a task (e.g. an excess removal integrated into a wash,
    /// ψ = 1 in Eq. 7/21). Returns the removed task.
    ///
    /// # Panics
    ///
    /// Panics if the task was already removed.
    pub fn remove_task(&mut self, id: TaskId) -> Task {
        self.tasks[id.0 as usize]
            .take()
            .expect("task was already removed")
    }

    /// Iterates over `(id, task)` for all live tasks.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TaskId(i as u32), t)))
    }

    /// Iterates over `(id, task)` mutably for all live tasks.
    pub fn tasks_mut(&mut self) -> impl Iterator<Item = (TaskId, &mut Task)> {
        self.tasks
            .iter_mut()
            .enumerate()
            .filter_map(|(i, t)| t.as_mut().map(|t| (TaskId(i as u32), t)))
    }

    /// Number of live tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.is_some()).count()
    }

    /// All live task ids, sorted by `(start, id)` — useful for replaying the
    /// schedule chronologically.
    pub fn tasks_chronological(&self) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = self.tasks().map(|(id, _)| id).collect();
        ids.sort_by_key(|&id| (self.task(id).start(), id));
        ids
    }

    /// Assay completion time `T_assay`: the latest end over operations and
    /// tasks (Eq. 22, extended to fluidic tasks so trailing removals count).
    pub fn makespan(&self) -> Time {
        let op_end = self.ops.iter().map(|o| o.end()).max().unwrap_or(0);
        let task_end = self.tasks().map(|(_, t)| t.end()).max().unwrap_or(0);
        op_end.max(task_end)
    }

    /// Completion time of biochemical operations only (`T_assay` in the
    /// paper's Table II sense: when the last operation finishes).
    pub fn op_makespan(&self) -> Time {
        self.ops.iter().map(|o| o.end()).max().unwrap_or(0)
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} ops, {} tasks, makespan {} s",
            self.ops.len(),
            self.task_count(),
            self.makespan()
        )?;
        let mut ops = self.ops.clone();
        ops.sort_by_key(|o| (o.start, o.op));
        for o in &ops {
            writeln!(
                f,
                "  [{:>3}..{:>3}) {} on {}",
                o.start,
                o.end(),
                o.op,
                o.device
            )?;
        }
        for id in self.tasks_chronological() {
            writeln!(f, "  {}", self.task(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use pdw_assay::FluidType;
    use pdw_biochip::{Coord, FlowPath};

    fn wash_task(start: Time) -> Task {
        let p = FlowPath::new(vec![Coord::new(0, 0), Coord::new(1, 0)]).unwrap();
        Task::new(
            TaskKind::Wash { targets: vec![] },
            p,
            start,
            2,
            FluidType::BUFFER,
        )
    }

    #[test]
    fn task_ids_are_stable_under_removal() {
        let mut s = Schedule::new();
        let a = s.push_task(wash_task(0));
        let b = s.push_task(wash_task(5));
        s.remove_task(a);
        assert_eq!(s.task(b).start(), 5);
        assert!(s.get_task(a).is_none());
        assert_eq!(s.task_count(), 1);
    }

    #[test]
    fn makespan_covers_ops_and_tasks() {
        let mut s = Schedule::new();
        s.push_op(ScheduledOp {
            op: OpId(0),
            device: DeviceId(0),
            start: 0,
            duration: 4,
        });
        assert_eq!(s.makespan(), 4);
        assert_eq!(s.op_makespan(), 4);
        s.push_task(wash_task(10));
        assert_eq!(s.makespan(), 12);
        assert_eq!(s.op_makespan(), 4);
    }

    #[test]
    fn chronological_order_sorts_by_start() {
        let mut s = Schedule::new();
        let late = s.push_task(wash_task(9));
        let early = s.push_task(wash_task(1));
        assert_eq!(s.tasks_chronological(), vec![early, late]);
    }

    #[test]
    fn scheduled_op_lookup() {
        let mut s = Schedule::new();
        s.push_op(ScheduledOp {
            op: OpId(3),
            device: DeviceId(1),
            start: 2,
            duration: 5,
        });
        assert_eq!(s.scheduled_op(OpId(3)).unwrap().end(), 7);
        assert!(s.scheduled_op(OpId(4)).is_none());
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_removal_panics() {
        let mut s = Schedule::new();
        let a = s.push_task(wash_task(0));
        s.remove_task(a);
        s.remove_task(a);
    }
}
