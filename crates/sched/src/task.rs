//! Fluidic tasks: anything that moves fluid along a flow path.

use serde::{Deserialize, Serialize};
use std::fmt;

use pdw_assay::{FluidType, OpId, ReagentId};
use pdw_biochip::{Coord, FlowPath};

use crate::Time;

/// Identifier of a task within a [`Schedule`](crate::Schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What a fluidic task does.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Injection of a reagent from a flow port into the device of `op`
    /// (input slot `slot` of the operation).
    Injection {
        /// The injected reagent.
        reagent: ReagentId,
        /// Receiving operation.
        op: OpId,
        /// Positional input slot of the operation.
        slot: usize,
    },
    /// Transport of the result of `from_op` to the device of `to_op`
    /// (`p_{j,i,1}` in the paper).
    Transport {
        /// Producing operation `j`.
        from_op: OpId,
        /// Consuming operation `i`.
        to_op: OpId,
    },
    /// Removal of excess fluid cached at the ends of the device of `op`
    /// after a fluid arrived there (`p_{j,i,2}` in the paper).
    ExcessRemoval {
        /// The operation whose device ends hold the excess fluid.
        op: OpId,
    },
    /// Removal of the (waste) result of sink operation `op` off the chip.
    OutputRemoval {
        /// The sink operation.
        op: OpId,
    },
    /// A wash operation flushing buffer over `targets`
    /// (`w_j` in the paper; the path covers all target cells, Eq. 15).
    Wash {
        /// Contaminated cells this wash is responsible for.
        targets: Vec<Coord>,
    },
}

impl TaskKind {
    /// Returns `true` for tasks whose purpose is disposal: their payload is
    /// waste headed off-chip (`Q_{p}=1` in Eq. 10, the Type-3 exemption).
    pub fn is_waste_disposal(&self) -> bool {
        matches!(
            self,
            TaskKind::ExcessRemoval { .. } | TaskKind::OutputRemoval { .. }
        )
    }

    /// Returns `true` for wash operations.
    pub fn is_wash(&self) -> bool {
        matches!(self, TaskKind::Wash { .. })
    }

    /// Returns `true` for the `p_{j,i,1}`-class tasks that deliver a fluid
    /// to a device for processing (injections and transports).
    pub fn is_delivery(&self) -> bool {
        matches!(
            self,
            TaskKind::Injection { .. } | TaskKind::Transport { .. }
        )
    }

    /// Short tag for display: `inj`, `trans`, `excess`, `out`, `wash`.
    pub fn tag(&self) -> &'static str {
        match self {
            TaskKind::Injection { .. } => "inj",
            TaskKind::Transport { .. } => "trans",
            TaskKind::ExcessRemoval { .. } => "excess",
            TaskKind::OutputRemoval { .. } => "out",
            TaskKind::Wash { .. } => "wash",
        }
    }
}

/// A scheduled fluidic task: a kind, a complete flow path, a start time, a
/// duration, and the fluid type that traverses the path.
///
/// Wash tasks carry [`FluidType::BUFFER`]; every other task's fluid leaves
/// residue of its type on the interior cells of the path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    kind: TaskKind,
    path: FlowPath,
    start: Time,
    duration: Time,
    fluid: FluidType,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero — every fluid movement takes time.
    pub fn new(
        kind: TaskKind,
        path: FlowPath,
        start: Time,
        duration: Time,
        fluid: FluidType,
    ) -> Self {
        assert!(duration > 0, "task duration must be nonzero");
        Self {
            kind,
            path,
            start,
            duration,
            fluid,
        }
    }

    /// The task's kind.
    pub fn kind(&self) -> &TaskKind {
        &self.kind
    }

    /// The complete flow path the task occupies.
    pub fn path(&self) -> &FlowPath {
        &self.path
    }

    /// Start time `t^s` in seconds.
    pub fn start(&self) -> Time {
        self.start
    }

    /// Duration in seconds.
    pub fn duration(&self) -> Time {
        self.duration
    }

    /// End time `t^e = t^s + duration`.
    pub fn end(&self) -> Time {
        self.start + self.duration
    }

    /// The fluid type traversing the path.
    pub fn fluid(&self) -> FluidType {
        self.fluid
    }

    /// Moves the task to a new start time.
    pub fn set_start(&mut self, start: Time) {
        self.start = start;
    }

    /// Replaces the task's path (used when a wash path is (re)computed).
    pub fn set_path(&mut self, path: FlowPath) {
        self.path = path;
    }

    /// Replaces the task's duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn set_duration(&mut self, duration: Time) {
        assert!(duration > 0, "task duration must be nonzero");
        self.duration = duration;
    }

    /// Returns `true` if this task's active window overlaps `other`'s
    /// (half-open intervals `[start, end)`).
    pub fn time_overlaps(&self, other: &Task) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// Returns `true` if this task conflicts with `other`: their windows
    /// overlap in time *and* their paths share a cell (Eq. 8/19/20).
    pub fn conflicts_with(&self, other: &Task) -> bool {
        self.time_overlaps(other) && self.path.overlaps(&other.path)
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}) {} {} via {} cells",
            self.start,
            self.end(),
            self.kind.tag(),
            self.fluid,
            self.path.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_biochip::Coord;

    fn path(y: u16, n: u16) -> FlowPath {
        FlowPath::new((0..n).map(|x| Coord::new(x, y)).collect()).unwrap()
    }

    fn wash(y: u16, start: Time, dur: Time) -> Task {
        Task::new(
            TaskKind::Wash { targets: vec![] },
            path(y, 4),
            start,
            dur,
            FluidType::BUFFER,
        )
    }

    #[test]
    fn end_is_start_plus_duration() {
        let t = wash(0, 5, 3);
        assert_eq!(t.end(), 8);
    }

    #[test]
    fn time_overlap_is_half_open() {
        let a = wash(0, 0, 5);
        let b = wash(0, 5, 5);
        assert!(!a.time_overlaps(&b));
        let c = wash(0, 4, 5);
        assert!(a.time_overlaps(&c));
    }

    #[test]
    fn conflict_needs_both_overlap_kinds() {
        let a = wash(0, 0, 5);
        let same_path_later = wash(0, 10, 5);
        let other_path_same_time = wash(1, 0, 5);
        let clash = wash(0, 2, 5);
        assert!(!a.conflicts_with(&same_path_later));
        assert!(!a.conflicts_with(&other_path_same_time));
        assert!(a.conflicts_with(&clash));
    }

    #[test]
    fn kind_predicates() {
        assert!(TaskKind::ExcessRemoval { op: OpId(0) }.is_waste_disposal());
        assert!(TaskKind::OutputRemoval { op: OpId(0) }.is_waste_disposal());
        assert!(!TaskKind::Transport {
            from_op: OpId(0),
            to_op: OpId(1)
        }
        .is_waste_disposal());
        assert!(TaskKind::Wash { targets: vec![] }.is_wash());
        assert!(TaskKind::Injection {
            reagent: ReagentId(0),
            op: OpId(0),
            slot: 0
        }
        .is_delivery());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_duration_panics() {
        let _ = wash(0, 0, 0);
    }
}
