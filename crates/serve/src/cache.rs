//! The server's two caches: a single-flight memo of verified plans and an
//! LRU of warm context parts.
//!
//! # Memo cache (single-flight)
//!
//! Keyed by the versioned [`pathdriver_wash::memo_key`] over
//! `(instance_hash, config_fingerprint)`. The classic hazard is the
//! *stampede*:
//! N requests for the same uncached instance arrive together and N workers
//! all pay for the same expensive solve. [`MemoCache::claim`] prevents it
//! with an in-flight marker: the first claimant becomes the **leader**
//! (receiving a [`LeadGuard`]), everyone else blocks on a condvar until the
//! leader [`fulfill`](LeadGuard::fulfill)s the entry — one oracle-checked
//! solve served to all waiters. The guard removes the marker on drop, so a
//! leader that panics or abandons (e.g. it only produced a
//! deadline-degraded plan, which must not be memoized) wakes the waiters
//! and lets one of them take over as the new leader. Waiters poll a
//! caller-supplied `give_up` predicate (their own deadline, on the
//! server's injectable clock) so an expired request exits typed instead of
//! waiting forever.
//!
//! # Context LRU
//!
//! Keyed by **chip** hash, because warm [`ContextParts`] mostly repay chip
//! work (routing scratch, reachability-adjacent buffers). But cached
//! *analyses and front ends* are functions of the whole instance — serving
//! them for a different schedule on the same chip would be wrong. So every
//! entry also records the **instance** hash it was built for: a checkout
//! matching chip + instance returns the full warm parts; a checkout
//! matching only the chip strips the entry down to its scratch pool
//! (always instance-independent) before handing it out.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use pathdriver_wash::{ContextParts, RungKind, WashResult};

/// A memoized, oracle-verified plan as served to requesters.
#[derive(Debug, Clone)]
pub struct ServedPlan {
    /// The verified plan.
    pub result: WashResult,
    /// The degradation-ladder rung that produced it.
    pub rung: RungKind,
}

enum MemoEntry {
    /// A leader is solving; waiters block on the cache condvar.
    InFlight,
    /// A verified plan, served to every later claimant.
    Ready(Arc<ServedPlan>),
}

/// What [`MemoCache::claim`] resolved to.
pub enum MemoClaim<'a> {
    /// A memoized plan was available (possibly after waiting out a leader).
    Hit(Arc<ServedPlan>),
    /// The caller is the leader for this key and must solve, then
    /// [`fulfill`](LeadGuard::fulfill) or [`abandon`](LeadGuard::abandon)
    /// the guard.
    Lead(LeadGuard<'a>),
    /// The caller's `give_up` predicate fired while waiting on a leader.
    Expired,
}

/// The single-flight memo cache (see the [module docs](self)).
#[derive(Default)]
pub struct MemoCache {
    entries: Mutex<HashMap<u64, MemoEntry>>,
    wakeup: Condvar,
}

impl MemoCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims `key`: a hit returns the memoized plan; an absent key makes
    /// the caller the leader; an in-flight key blocks until the leader
    /// resolves it or `give_up` returns `true`. Waiters re-check
    /// `give_up` at least every millisecond of wall time, so a manual
    /// test clock advanced from another thread is honored promptly.
    pub fn claim(&self, key: u64, mut give_up: impl FnMut() -> bool) -> MemoClaim<'_> {
        let mut entries = self.entries.lock().unwrap();
        loop {
            match entries.get(&key) {
                Some(MemoEntry::Ready(plan)) => return MemoClaim::Hit(Arc::clone(plan)),
                Some(MemoEntry::InFlight) => {
                    if give_up() {
                        return MemoClaim::Expired;
                    }
                    let (guard, _) = self
                        .wakeup
                        .wait_timeout(entries, Duration::from_millis(1))
                        .unwrap();
                    entries = guard;
                }
                None => {
                    entries.insert(key, MemoEntry::InFlight);
                    return MemoClaim::Lead(LeadGuard {
                        cache: self,
                        key,
                        resolved: false,
                    });
                }
            }
        }
    }

    /// The memoized plan for `key`, if ready (never waits).
    pub fn peek(&self, key: u64) -> Option<Arc<ServedPlan>> {
        match self.entries.lock().unwrap().get(&key) {
            Some(MemoEntry::Ready(plan)) => Some(Arc::clone(plan)),
            _ => None,
        }
    }

    /// Number of `Ready` entries.
    pub fn ready_len(&self) -> usize {
        self.entries
            .lock()
            .unwrap()
            .values()
            .filter(|e| matches!(e, MemoEntry::Ready(_)))
            .count()
    }
}

/// The leader's obligation for an in-flight memo key. Dropping the guard
/// without [`fulfill`](Self::fulfill) — including by panic unwinding
/// through the solve — removes the in-flight marker and wakes the waiters
/// so one of them can lead instead.
pub struct LeadGuard<'a> {
    cache: &'a MemoCache,
    key: u64,
    resolved: bool,
}

impl LeadGuard<'_> {
    /// Publishes the leader's verified plan and wakes every waiter.
    pub fn fulfill(mut self, plan: Arc<ServedPlan>) {
        let mut entries = self.cache.entries.lock().unwrap();
        entries.insert(self.key, MemoEntry::Ready(plan));
        self.resolved = true;
        drop(entries);
        self.cache.wakeup.notify_all();
    }

    /// Releases the key without memoizing (e.g. the solve was
    /// deadline-degraded and must not pollute the canonical cache). Waiters
    /// wake and re-claim; the next one becomes the new leader.
    pub fn abandon(self) {
        // Drop does the work.
    }
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.entries.lock().unwrap().remove(&self.key);
            self.cache.wakeup.notify_all();
        }
    }
}

/// How a [`ContextLru::checkout`] resolved.
pub enum ContextCheckout {
    /// Chip and instance both matched: the full warm parts.
    Warm(ContextParts),
    /// Only the chip matched: the entry's scratch pool, with the
    /// instance-specific caches stripped.
    PoolOnly(ContextParts),
    /// No entry for this chip.
    Cold,
}

/// Running counters of LRU behavior, surfaced through the server's stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruCounters {
    /// Checkouts serving full warm parts (chip + instance matched).
    pub warm_hits: u64,
    /// Checkouts serving a scratch pool only (chip matched, instance not).
    pub pool_hits: u64,
    /// Checkouts finding nothing for the chip.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
}

struct LruEntry {
    chip: u64,
    instance: u64,
    parts: ContextParts,
    last_used: u64,
}

/// A capacity-bounded LRU of warm [`ContextParts`] (see the
/// [module docs](self) for the chip-vs-instance keying rule).
pub struct ContextLru {
    capacity: usize,
    tick: u64,
    entries: Vec<LruEntry>,
    counters: LruCounters,
}

impl ContextLru {
    /// An empty LRU holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        ContextLru {
            capacity,
            tick: 0,
            entries: Vec::new(),
            counters: LruCounters::default(),
        }
    }

    /// Checks out the warm parts for `chip`, removing them from the cache
    /// (the caller re-[`store`](Self::store)s them after the solve). Full
    /// parts are only served when `instance` also matches what the entry
    /// was built for; otherwise the instance-specific caches are stripped
    /// and only the scratch pool is handed out.
    pub fn checkout(&mut self, chip: u64, instance: u64) -> ContextCheckout {
        match self.entries.iter().position(|e| e.chip == chip) {
            None => {
                self.counters.misses += 1;
                ContextCheckout::Cold
            }
            Some(i) => {
                let entry = self.entries.swap_remove(i);
                if entry.instance == instance {
                    self.counters.warm_hits += 1;
                    ContextCheckout::Warm(entry.parts)
                } else {
                    self.counters.pool_hits += 1;
                    ContextCheckout::PoolOnly(ContextParts {
                        pool: entry.parts.pool,
                        ..ContextParts::default()
                    })
                }
            }
        }
    }

    /// Stores the parts built for `(chip, instance)`, evicting the
    /// least-recently-used entries beyond capacity. A later entry for the
    /// same chip replaces the earlier one.
    pub fn store(&mut self, chip: u64, instance: u64, parts: ContextParts) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(i) = self.entries.iter().position(|e| e.chip == chip) {
            self.entries.swap_remove(i);
        }
        self.entries.push(LruEntry {
            chip,
            instance,
            parts,
            last_used: self.tick,
        });
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty while over capacity");
            self.entries.swap_remove(oldest);
            self.counters.evictions += 1;
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn counters(&self) -> LruCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_keys_by_chip_but_guards_by_instance() {
        let mut lru = ContextLru::new(2);
        lru.store(1, 10, ContextParts::default());
        // Same chip, same instance: full warm parts.
        assert!(matches!(lru.checkout(1, 10), ContextCheckout::Warm(_)));
        lru.store(1, 10, ContextParts::default());
        // Same chip, different instance: pool only.
        assert!(matches!(lru.checkout(1, 11), ContextCheckout::PoolOnly(_)));
        lru.store(1, 11, ContextParts::default());
        // Unknown chip: cold.
        assert!(matches!(lru.checkout(2, 20), ContextCheckout::Cold));
        let c = lru.counters();
        assert_eq!((c.warm_hits, c.pool_hits, c.misses), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = ContextLru::new(2);
        lru.store(1, 1, ContextParts::default());
        lru.store(2, 2, ContextParts::default());
        // Touch chip 1 so chip 2 is the LRU entry.
        assert!(matches!(lru.checkout(1, 1), ContextCheckout::Warm(_)));
        lru.store(1, 1, ContextParts::default());
        lru.store(3, 3, ContextParts::default());
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.counters().evictions, 1);
        assert!(matches!(lru.checkout(2, 2), ContextCheckout::Cold));
        assert!(matches!(lru.checkout(3, 3), ContextCheckout::Warm(_)));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut lru = ContextLru::new(0);
        lru.store(1, 1, ContextParts::default());
        assert!(lru.is_empty());
        assert!(matches!(lru.checkout(1, 1), ContextCheckout::Cold));
    }

    #[test]
    fn memo_leader_fulfills_and_waiters_hit() {
        let memo = MemoCache::new();
        let lead = match memo.claim(7, || false) {
            MemoClaim::Lead(g) => g,
            _ => panic!("first claim must lead"),
        };
        // A second claimant with an expired budget gives up instead of
        // deadlocking on the in-flight marker.
        assert!(matches!(memo.claim(7, || true), MemoClaim::Expired));
        let plan = Arc::new(ServedPlan {
            result: dummy_result(),
            rung: RungKind::Dawo,
        });
        lead.fulfill(Arc::clone(&plan));
        match memo.claim(7, || false) {
            MemoClaim::Hit(got) => assert!(Arc::ptr_eq(&got, &plan)),
            _ => panic!("fulfilled key must hit"),
        }
        assert_eq!(memo.ready_len(), 1);
    }

    #[test]
    fn abandoned_lead_lets_the_next_claimant_lead() {
        let memo = MemoCache::new();
        match memo.claim(9, || false) {
            MemoClaim::Lead(g) => g.abandon(),
            _ => panic!("first claim must lead"),
        }
        assert!(memo.peek(9).is_none());
        assert!(matches!(memo.claim(9, || false), MemoClaim::Lead(_)));
    }

    fn dummy_result() -> WashResult {
        let bench = pdw_assay::benchmarks::demo();
        let s = pdw_synth::synthesize(&bench).unwrap();
        pathdriver_wash::dawo(&bench, &s).unwrap()
    }
}
