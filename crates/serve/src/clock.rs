//! Injectable time for a testable event loop.
//!
//! Every *decision* the server makes about time — queue-wait accounting,
//! deadline expiry, memo-waiter give-up — reads a [`Clock`]. Production
//! uses [`WallClock`]; the deterministic tests use [`ManualClock`], whose
//! time only moves when the test calls [`advance`](ManualClock::advance).
//! (Pure *measurements*, like per-request service wall time reported in
//! benches, still read `Instant` directly — they never feed back into
//! control flow.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source: `now()` is the duration since the clock's
/// epoch. Implementations must be cheap and callable from any thread.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
}

/// The production clock: monotonic wall time since construction.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is now.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

/// A test clock that only moves when told to. Cloning shares the
/// underlying counter, so a test can hold one handle while the server
/// holds another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time since its epoch.
    pub fn set(&self, d: Duration) {
        self.nanos.store(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = ManualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now(), Duration::ZERO);
        handle.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.set(Duration::from_secs(1));
        assert_eq!(handle.now(), Duration::from_secs(1));
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
