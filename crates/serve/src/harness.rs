//! Deterministic load-test harness: replays a seeded
//! [`request_stream`](pdw_gen::request_stream) against a [`PlanServer`]
//! and summarizes latency/throughput.
//!
//! The harness is the shared driver of the serve tests, `bench_serve`, and
//! the `pdw serve` CLI demo: [`materialize`] turns stream events into
//! concrete requests over an instance pool (sampling repair deltas with
//! [`pdw_gen::fault_delta`]), and [`run_open_loop`] submits them —
//! optionally paced to their arrival times — then waits out every ticket
//! and builds a [`LoadReport`]. Identical `(options, pool)` inputs replay
//! identical traffic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pdw_gen::{fault_delta, StreamEvent, StreamEventKind};

use crate::server::{PlanServer, Rejected, Response, ServeRequest};
use crate::Instance;

/// One concrete request with its open-loop arrival time.
pub struct TimedRequest {
    /// Arrival time, microseconds after stream start.
    pub at_us: u64,
    /// The request to submit.
    pub request: ServeRequest,
    /// Per-request deadline budget (`None` = server default).
    pub budget: Option<Duration>,
}

/// Turns stream events into concrete requests over `pool`. Repair events
/// sample a [`fault_delta`] against their instance; an instance with
/// nothing to mutate falls back to a plain solve. Pool indices wrap, so
/// any non-empty pool works with any stream.
pub fn materialize(
    events: &[StreamEvent],
    pool: &[Arc<Instance>],
    budget: Option<Duration>,
) -> Vec<TimedRequest> {
    assert!(!pool.is_empty(), "materialize needs a non-empty pool");
    events
        .iter()
        .map(|event| {
            let instance = Arc::clone(&pool[event.pool_index % pool.len()]);
            let request = match event.kind {
                StreamEventKind::Solve => ServeRequest::Solve { instance },
                StreamEventKind::Repair { delta_seed } => {
                    match fault_delta(instance.synthesis(), delta_seed) {
                        Some(fd) => ServeRequest::Repair {
                            instance,
                            delta: pathdriver_wash::PlanDelta::Fault(fd),
                        },
                        None => ServeRequest::Solve { instance },
                    }
                }
            };
            TimedRequest {
                at_us: event.at_us,
                request,
                budget,
            }
        })
        .collect()
}

/// How one submitted request ended, in submission order.
pub enum Submission {
    /// Refused admission (shed or shutting down).
    Shed(Rejected),
    /// Admitted and completed.
    Done {
        /// The server's response.
        response: Response,
        /// Queue-to-completion latency on the server's clock.
        latency: Duration,
    },
}

/// Aggregate results of one open-loop run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LoadReport {
    /// Requests submitted.
    pub requests: usize,
    /// Requests refused admission.
    pub shed: usize,
    /// Requests served a plan.
    pub served: usize,
    /// Admitted requests that resolved to a typed error.
    pub errors: usize,
    /// Served responses that hit the memo cache.
    pub memo_hits: usize,
    /// Served responses that came from a repair session.
    pub repairs: usize,
    /// Median queue-to-completion latency of served requests, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency of served requests, ms.
    pub p99_ms: f64,
    /// Wall time of the whole run on the server's clock, seconds.
    pub wall_s: f64,
    /// Served plans per wall second.
    pub plans_per_sec: f64,
    /// Median service time of cold solves (leader, no memo), ms.
    pub cold_service_p50_ms: f64,
    /// Median service time of memo hits, ms.
    pub hit_service_p50_ms: f64,
    /// `cold_service_p50_ms / hit_service_p50_ms` (0 when either side is
    /// empty).
    pub memo_hit_speedup: f64,
}

/// The full outcome of [`run_open_loop`]: per-request rows (submission
/// order) plus the aggregate report.
pub struct LoadRun {
    /// One row per input request, in order.
    pub rows: Vec<Submission>,
    /// The aggregate summary.
    pub report: LoadReport,
}

/// Replays `requests` against `server`. With `pace`, submissions honor
/// each request's `at_us` against real wall time (open-loop: arrivals do
/// not wait for responses); without it, everything is submitted as fast
/// as possible — the right mode under a manual test clock, which would
/// otherwise never move the pacing forward. Blocks until every admitted
/// ticket completes.
pub fn run_open_loop(server: &PlanServer, requests: &[TimedRequest], pace: bool) -> LoadRun {
    let clock = server.clock();
    let t0 = clock.now();
    let wall0 = Instant::now();
    let mut tickets = Vec::with_capacity(requests.len());
    for req in requests {
        if pace {
            let target = Duration::from_micros(req.at_us);
            let elapsed = wall0.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        tickets.push(server.submit_with_budget(req.request.clone(), req.budget));
    }
    let rows: Vec<Submission> = tickets
        .into_iter()
        .map(|ticket| match ticket {
            Err(rejected) => Submission::Shed(rejected),
            Ok(ticket) => {
                let response = ticket.wait();
                let latency = ticket.latency().unwrap_or_default();
                Submission::Done { response, latency }
            }
        })
        .collect();
    let wall_s = (clock.now().saturating_sub(t0)).as_secs_f64();

    let mut shed = 0;
    let mut served = 0;
    let mut errors = 0;
    let mut memo_hits = 0;
    let mut repairs = 0;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut cold_ms: Vec<f64> = Vec::new();
    let mut hit_ms: Vec<f64> = Vec::new();
    for row in &rows {
        match row {
            Submission::Shed(_) => shed += 1,
            Submission::Done { response, latency } => match response {
                Err(_) => errors += 1,
                Ok(plan) => {
                    served += 1;
                    latencies_ms.push(latency.as_secs_f64() * 1e3);
                    if plan.memo_hit {
                        memo_hits += 1;
                        hit_ms.push(plan.service_s * 1e3);
                    } else if plan.repaired {
                        repairs += 1;
                    } else {
                        cold_ms.push(plan.service_s * 1e3);
                    }
                }
            },
        }
    }
    let cold_p50 = percentile(&mut cold_ms, 0.50);
    let hit_p50 = percentile(&mut hit_ms, 0.50);
    let report = LoadReport {
        requests: requests.len(),
        shed,
        served,
        errors,
        memo_hits,
        repairs,
        p50_ms: percentile(&mut latencies_ms, 0.50),
        p99_ms: percentile(&mut latencies_ms, 0.99),
        wall_s,
        plans_per_sec: if wall_s > 0.0 {
            served as f64 / wall_s
        } else {
            0.0
        },
        cold_service_p50_ms: cold_p50,
        hit_service_p50_ms: hit_p50,
        memo_hit_speedup: if hit_p50 > 0.0 && cold_p50 > 0.0 {
            cold_p50 / hit_p50
        } else {
            0.0
        },
    };
    LoadRun { rows, report }
}

/// Percentile over an unsorted sample (nearest-rank on the sorted data);
/// 0 for an empty sample.
pub fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut s = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut s, 1.0), 4.0);
        assert_eq!(percentile(&mut s, 0.5), 3.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }
}
