//! `pdw-serve`: a long-running batching plan server for PathDriver-Wash.
//!
//! The engine underneath ([`pathdriver_wash`]) already solves instances
//! fast — batched fan-out, a graceful-degradation ladder, incremental
//! repair. This crate is the serving layer ROADMAP item 1 asks for: a
//! [`PlanServer`] that takes heavy request traffic and turns it into as
//! few ladder runs as possible.
//!
//! The request path is **queue → batcher → ladder → caches**:
//!
//! - **Admission** ([`PlanServer::submit`]): a cost-budget gate sheds
//!   excess load with typed [`Rejected::Saturated`] instead of letting the
//!   queue grow without bound.
//! - **Batching**: worker threads drain the queue in batches, each request
//!   isolated behind its own panic boundary ([`ServeError::WorkerPanic`]).
//! - **Deadlines**: per-request budgets map onto the degradation ladder's
//!   `pipeline_budget` — a tight deadline degrades a solve rather than
//!   failing it, and an expired one returns a typed
//!   [`ServeError::DeadlineExpired`].
//! - **Caches**: a single-flight memo of verified plans (one solve per
//!   instance, no stampede — [`cache::MemoCache`]) and an LRU of warm
//!   context parts keyed by chip hash ([`cache::ContextLru`]).
//! - **Repair**: deltas route through a per-instance
//!   [`RepairSession`](pathdriver_wash::RepairSession) so a one-cell fault
//!   costs an invalidation, not a cold solve.
//!
//! Everything is built testable-first: time is an injectable [`Clock`]
//! ([`clock::ManualClock`] in tests), traffic comes from the seeded
//! [`pdw_gen::request_stream`], and a chaos [`Hook`] can crash workers at
//! chosen requests — so the stampede, deadline, shedding, LRU-churn, and
//! soak tests are deterministic at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod harness;
pub mod net;
pub mod proxy;
mod server;
pub mod store;

pub use cache::ServedPlan;
pub use clock::{Clock, ManualClock, WallClock};
pub use harness::{materialize, run_open_loop, LoadReport, LoadRun, Submission, TimedRequest};
pub use net::{
    run_socket_load, ClientConfig, ClientError, NetConfig, NetServeStats, PlanClient, RemotePlan,
    SocketJob, SocketLoadReport, SocketServer,
};
pub use proxy::{ChaosMode, ChaosProxy, ChaosSpec};
pub use server::{
    Hook, HookPoint, Instance, PlanServer, Rejected, Response, ServeConfig, ServeError,
    ServeRequest, ServeStats, Served, Ticket,
};
pub use store::{FileMemoStore, InMemoryMemoStore, MemoStore, StoreLoadReport};
