//! The socket front end of the plan server: `pdw serve --listen`.
//!
//! [`SocketServer`] exposes a [`PlanServer`] over TCP or Unix-domain
//! sockets speaking the canonical codec's framed wire protocol
//! ([`NetRequest`]/[`NetResponse`], DESIGN.md §13); [`PlanClient`] is the
//! retrying client. The design goals, in order:
//!
//! - **every failure is typed** — transport faults surface as
//!   [`TransportError`], serve-side refusals as [`WireError`]; a network
//!   problem is never a panic and never a silently wrong plan;
//! - **retries are safe by construction** — only idempotent solves ride
//!   the wire (repairs stay in-process), and the server keys each solve by
//!   its memo key, so a retry can only hit the memo or re-lead the same
//!   single-flight solve;
//! - **deadlines propagate** — the client subtracts its observed transit
//!   estimate (half the handshake/heartbeat RTT) from the remaining budget
//!   before sending, and the server maps the received budget onto
//!   [`PlanServer::submit_with_budget`], so a deadline that expires in
//!   transit comes back as a typed [`WireError::DeadlineExpired`];
//! - **drain is graceful** — a [`NetRequest::Drain`] (or
//!   [`SocketServer::drain`]) stops the accept loop, finishes every
//!   in-flight solve, answers everything else [`WireError::ShuttingDown`],
//!   and releases the listener so the same address can be rebound;
//! - **plans are re-verified at the edge** — the server ships certified
//!   [`PlanArtifact`]s and the client re-runs the verification certificate
//!   against its own copy of the instance before accepting one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathdriver_wash::codec::DEFAULT_MAX_FRAME_LEN;
use pathdriver_wash::transport::{
    hello, recv_response, send_request, send_response, FrameReader,
};
use pathdriver_wash::{
    config_fingerprint, NetAddr, NetListener, NetRequest, NetResponse, NetStream, PdwConfig,
    PlanArtifact, SolveRequest, TransportError, WireError, SCHEMA_VERSION,
};
use pdw_assay::benchmarks::Benchmark;
use pdw_synth::Synthesis;

use crate::harness::percentile;
use crate::server::{Instance, PlanServer, Rejected, ServeError, ServeRequest};

/// Socket-side configuration of a [`SocketServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// The largest frame accepted or produced (guards allocation on both
    /// sides; advertised in the `HelloAck`).
    pub max_frame_len: usize,
    /// Granularity of the per-connection read poll (drain and idle checks
    /// happen between polls).
    pub read_tick: Duration,
    /// Deadline for writing one response frame.
    pub write_timeout: Duration,
    /// How long a fresh connection gets to send its `Hello`.
    pub handshake_timeout: Duration,
    /// Connections with no traffic and no in-flight work for this long
    /// are evicted.
    pub idle_timeout: Duration,
    /// Heartbeat cadence advertised to clients (the idle timeout should
    /// be several multiples of this).
    pub heartbeat_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            read_tick: Duration::from_millis(50),
            write_timeout: Duration::from_secs(10),
            handshake_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            heartbeat_ms: 1000,
        }
    }
}

/// A point-in-time snapshot of the socket layer's counters (the plan
/// server underneath keeps its own [`crate::ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct NetServeStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections dropped during the handshake (no/invalid `Hello`,
    /// version skew, torn frame).
    pub handshake_failures: u64,
    /// Heartbeat pings answered.
    pub pings: u64,
    /// Solve requests admitted to the plan server.
    pub solves: u64,
    /// Protocol-level refusals answered ([`WireError::BadRequest`]).
    pub bad_requests: u64,
    /// Connections evicted for idling past the timeout.
    pub idle_evicted: u64,
    /// Solves refused because the server was draining.
    pub drain_refused: u64,
}

#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    active: AtomicU64,
    handshake_failures: AtomicU64,
    pings: AtomicU64,
    solves: AtomicU64,
    bad_requests: AtomicU64,
    idle_evicted: AtomicU64,
    drain_refused: AtomicU64,
}

struct NetShared {
    plan: Arc<PlanServer>,
    cfg: NetConfig,
    config_fp: u64,
    draining: AtomicBool,
    in_flight: AtomicUsize,
    next_conn_id: AtomicU64,
    conns: Mutex<HashMap<u64, NetStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    counters: NetCounters,
}

impl NetShared {
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }
}

/// The socket front end: an accept loop plus one reader thread per
/// connection, all feeding the shared [`PlanServer`]. Solves run on the
/// plan server's worker pool; each in-flight request parks a small waiter
/// thread that writes the response (or its typed error) back under the
/// connection's write lock, so heartbeats and pipelined requests keep
/// flowing while a solve is in progress.
pub struct SocketServer {
    shared: Arc<NetShared>,
    local: NetAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    stopped: AtomicBool,
}

impl SocketServer {
    /// Binds `listener`'s address and starts serving `plan` on it.
    pub fn start(plan: Arc<PlanServer>, listener: NetListener, cfg: NetConfig) -> Self {
        let local = listener.local_addr();
        let config_fp = plan.config_fingerprint();
        let shared = Arc::new(NetShared {
            plan,
            cfg,
            config_fp,
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            next_conn_id: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            counters: NetCounters::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pdw-net-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, listener))
            .expect("spawn accept thread");
        SocketServer {
            shared,
            local,
            accept_thread: Mutex::new(Some(accept_thread)),
            stopped: AtomicBool::new(false),
        }
    }

    /// The concrete bound address (the real port when TCP bound port 0).
    pub fn local_addr(&self) -> NetAddr {
        self.local.clone()
    }

    /// `true` once a drain has begun (locally or via a wire `Drain`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests admitted over sockets and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Connection-thread handles currently held (live connections plus
    /// any finished ones not yet reaped — the accept loop joins finished
    /// handles opportunistically, so this stays bounded by the number of
    /// concurrently live connections, not by connections ever accepted).
    pub fn conn_thread_backlog(&self) -> usize {
        self.shared.conn_threads.lock().unwrap().len()
    }

    /// A snapshot of the socket layer's counters.
    pub fn stats(&self) -> NetServeStats {
        let c = &self.shared.counters;
        NetServeStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed),
            handshake_failures: c.handshake_failures.load(Ordering::Relaxed),
            pings: c.pings.load(Ordering::Relaxed),
            solves: c.solves.load(Ordering::Relaxed),
            bad_requests: c.bad_requests.load(Ordering::Relaxed),
            idle_evicted: c.idle_evicted.load(Ordering::Relaxed),
            drain_refused: c.drain_refused.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop accepting, finish every in-flight request
    /// (new solves are answered [`WireError::ShuttingDown`]), then close
    /// every connection, join every thread, and release the listener so
    /// the address can be rebound. Blocks until complete. Idempotent.
    ///
    /// The [`PlanServer`] underneath is *not* shut down — it may have
    /// other (in-process) users; the owner shuts it down separately.
    pub fn drain(&self) {
        self.shared.begin_drain();
        while self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.stop_threads();
    }

    /// Abrupt stop: begin draining and close every connection *now*,
    /// without waiting for in-flight requests' responses to be written
    /// (the plan server still completes them internally). Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
        self.stop_threads();
    }

    fn stop_threads(&self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        for (_, conn) in self.shared.conns.lock().unwrap().drain() {
            conn.shutdown();
        }
        if let Some(h) = self.accept_thread.lock().unwrap().take() {
            let _ = h.join();
        }
        let threads: Vec<_> = self.shared.conn_threads.lock().unwrap().drain(..).collect();
        for h in threads {
            let _ = h.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Joins every finished connection-thread handle, keeping only live
/// ones: a long-running server must not accumulate one handle per
/// connection it ever accepted.
fn reap_finished(threads: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < threads.len() {
        if threads[i].is_finished() {
            let _ = threads.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: NetListener) {
    let _ = listener.set_nonblocking(true);
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            // Dropping the listener here unlinks a Unix socket path, so a
            // post-drain rebind of the same address succeeds.
            return;
        }
        reap_finished(&mut shared.conn_threads.lock().unwrap());
        match listener.accept() {
            Ok(stream) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                shared.counters.active.fetch_add(1, Ordering::Relaxed);
                let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().insert(conn_id, clone);
                }
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name(format!("pdw-net-conn-{conn_id}"))
                    .spawn(move || {
                        conn_loop(&conn_shared, conn_id, stream);
                        conn_shared.conns.lock().unwrap().remove(&conn_id);
                        conn_shared.counters.active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                shared.conn_threads.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Answers one connection until EOF, a protocol fault, idle eviction, or
/// shutdown. The first frame must be a `Hello`.
fn conn_loop(shared: &Arc<NetShared>, _conn_id: u64, mut stream: NetStream) {
    let cfg = &shared.cfg;
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // One resumable frame reader for the connection's whole life:
    // partially received bytes survive read ticks, so a frame trickling
    // in across many ticks is assembled, never torn.
    let mut reader = FrameReader::new(cfg.max_frame_len);
    // Handshake: require Hello, answer HelloAck with this build's
    // parameters. A peer speaking a different codec version fails frame
    // decode right here — typed, before any work is admitted.
    match reader.poll_request(&mut stream, cfg.handshake_timeout) {
        Ok(Some(NetRequest::Hello { codec_version })) if codec_version == SCHEMA_VERSION => {
            let ack = NetResponse::HelloAck {
                codec_version: SCHEMA_VERSION,
                max_frame_len: cfg.max_frame_len as u64,
                heartbeat_ms: cfg.heartbeat_ms,
            };
            let mut w = writer.lock().unwrap();
            if send_response(&mut w, &ack, cfg.write_timeout).is_err() {
                shared
                    .counters
                    .handshake_failures
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        Ok(Some(NetRequest::Hello { codec_version })) => {
            reply_error(
                &writer,
                cfg,
                0,
                WireError::BadRequest(format!(
                    "codec version mismatch: client v{codec_version}, server v{SCHEMA_VERSION}"
                )),
            );
            shared
                .counters
                .handshake_failures
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        Ok(Some(_)) => {
            reply_error(
                &writer,
                cfg,
                0,
                WireError::BadRequest("first frame must be Hello".to_string()),
            );
            shared
                .counters
                .handshake_failures
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        Err(TransportError::VersionSkew { found, expected }) => {
            // Envelope-level skew: answer typed before closing. The skewed
            // peer's decode of this frame fails as its own (non-retryable)
            // `VersionSkew`, so it fails fast instead of burning its whole
            // retry budget on "server closed during handshake".
            reply_error(
                &writer,
                cfg,
                0,
                WireError::BadRequest(format!(
                    "codec version skew: client frame v{found}, server v{expected}"
                )),
            );
            shared
                .counters
                .handshake_failures
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        Ok(None) | Err(_) => {
            shared
                .counters
                .handshake_failures
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    let conn_in_flight = Arc::new(AtomicUsize::new(0));
    let mut waiters: Vec<JoinHandle<()>> = Vec::new();
    // Shared so waiter threads refresh it when they write a response: a
    // connection whose solve outlived the idle timeout gets a full idle
    // window to send its next request, not an instant eviction.
    let last_activity = Arc::new(Mutex::new(Instant::now()));
    loop {
        let buffered_before = reader.buffered();
        match reader.poll_request(&mut stream, cfg.read_tick) {
            Err(TransportError::Timeout { .. }) => {
                // A tick that delivered part of a frame is a slow peer
                // still talking, not an idle one.
                if reader.buffered() > buffered_before {
                    *last_activity.lock().unwrap() = Instant::now();
                }
                // Quiet tick: check idle eviction (never while work is in
                // flight — a client silently awaiting a long solve is not
                // idle) and drain progress.
                if conn_in_flight.load(Ordering::SeqCst) == 0
                    && last_activity.lock().unwrap().elapsed() > cfg.idle_timeout
                {
                    shared.counters.idle_evicted.fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            Ok(None) => break,
            Err(TransportError::VersionSkew { found, expected }) => {
                reply_error(
                    &writer,
                    cfg,
                    0,
                    WireError::BadRequest(format!(
                        "codec version skew: frame v{found}, server v{expected}"
                    )),
                );
                break;
            }
            Err(TransportError::TornFrame(e)) => {
                reply_error(
                    &writer,
                    cfg,
                    0,
                    WireError::BadRequest(format!("torn frame: {e}")),
                );
                break;
            }
            Err(_) => break,
            Ok(Some(req)) => {
                *last_activity.lock().unwrap() = Instant::now();
                match req {
                    NetRequest::Hello { .. } => {
                        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                        reply_error(
                            &writer,
                            cfg,
                            0,
                            WireError::BadRequest("duplicate Hello".to_string()),
                        );
                    }
                    NetRequest::Ping { nonce } => {
                        shared.counters.pings.fetch_add(1, Ordering::Relaxed);
                        let mut w = writer.lock().unwrap();
                        if send_response(&mut w, &NetResponse::Pong { nonce }, cfg.write_timeout)
                            .is_err()
                        {
                            break;
                        }
                    }
                    NetRequest::Drain => {
                        shared.begin_drain();
                        let ack = NetResponse::DrainAck {
                            in_flight: shared.in_flight.load(Ordering::SeqCst) as u64,
                        };
                        let mut w = writer.lock().unwrap();
                        let _ = send_response(&mut w, &ack, cfg.write_timeout);
                    }
                    NetRequest::Solve {
                        id,
                        budget_us,
                        solve,
                    } => {
                        handle_solve(
                            shared,
                            &writer,
                            &conn_in_flight,
                            &last_activity,
                            &mut waiters,
                            id,
                            budget_us,
                            *solve,
                        );
                    }
                }
            }
        }
    }
    for h in waiters {
        let _ = h.join();
    }
    stream.shutdown();
}

/// Admits one solve to the plan server and parks a waiter thread on its
/// ticket; refusals are answered inline.
#[allow(clippy::too_many_arguments)]
fn handle_solve(
    shared: &Arc<NetShared>,
    writer: &Arc<Mutex<NetStream>>,
    conn_in_flight: &Arc<AtomicUsize>,
    last_activity: &Arc<Mutex<Instant>>,
    waiters: &mut Vec<JoinHandle<()>>,
    id: u64,
    budget_us: Option<u64>,
    solve: SolveRequest,
) {
    let cfg = &shared.cfg;
    if shared.draining.load(Ordering::SeqCst) {
        shared
            .counters
            .drain_refused
            .fetch_add(1, Ordering::Relaxed);
        reply_error(writer, cfg, id, WireError::ShuttingDown);
        return;
    }
    // The memo key is (instance_hash, server config fingerprint): serving
    // a request that asked for a *different* planner config would be a
    // silently wrong plan, so a mismatch is a typed refusal instead.
    let req_fp = config_fingerprint(&solve.config);
    if req_fp != shared.config_fp {
        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        reply_error(
            writer,
            cfg,
            id,
            WireError::BadRequest(format!(
                "planner config fingerprint {req_fp:#x} does not match the server's {:#x}",
                shared.config_fp
            )),
        );
        return;
    }
    let instance = Arc::new(Instance::new(solve.bench, solve.synthesis));
    let budget = budget_us.map(Duration::from_micros);
    let submitted = shared.plan.submit_with_budget(
        ServeRequest::Solve {
            instance: Arc::clone(&instance),
        },
        budget,
    );
    let ticket = match submitted {
        Ok(ticket) => ticket,
        Err(Rejected::ShuttingDown) => {
            shared
                .counters
                .drain_refused
                .fetch_add(1, Ordering::Relaxed);
            reply_error(writer, cfg, id, WireError::ShuttingDown);
            return;
        }
        Err(Rejected::Saturated {
            queued_cost,
            cost,
            budget,
        }) => {
            reply_error(
                writer,
                cfg,
                id,
                WireError::Saturated {
                    queued_cost,
                    cost,
                    budget,
                },
            );
            return;
        }
    };
    shared.counters.solves.fetch_add(1, Ordering::Relaxed);
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    conn_in_flight.fetch_add(1, Ordering::SeqCst);
    let waiter_shared = Arc::clone(shared);
    let waiter_writer = Arc::clone(writer);
    let waiter_conn_in_flight = Arc::clone(conn_in_flight);
    let waiter_last_activity = Arc::clone(last_activity);
    let handle = std::thread::Builder::new()
        .name(format!("pdw-net-wait-{id}"))
        .spawn(move || {
            let response = ticket.wait();
            let resp = match response {
                Ok(served) => {
                    let artifact = PlanArtifact::certified(
                        instance.instance_hash(),
                        waiter_shared.config_fp,
                        served.plan.rung,
                        instance.bench(),
                        instance.synthesis(),
                        served.plan.result.clone(),
                    );
                    NetResponse::Plan {
                        id,
                        memo_hit: served.memo_hit,
                        degraded: served.degraded,
                        artifact: Box::new(artifact),
                    }
                }
                Err(e) => NetResponse::Error {
                    id,
                    error: wire_error(e),
                },
            };
            {
                let mut w = waiter_writer.lock().unwrap();
                let _ = send_response(&mut w, &resp, waiter_shared.cfg.write_timeout);
            }
            // The idle clock restarts when the answer goes out: a client
            // whose solve outlived the idle timeout still gets a full
            // window to send its next request.
            *waiter_last_activity.lock().unwrap() = Instant::now();
            waiter_conn_in_flight.fetch_sub(1, Ordering::SeqCst);
            waiter_shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        })
        .expect("spawn waiter thread");
    waiters.push(handle);
}

fn reply_error(writer: &Arc<Mutex<NetStream>>, cfg: &NetConfig, id: u64, error: WireError) {
    let mut w = writer.lock().unwrap();
    let _ = send_response(&mut w, &NetResponse::Error { id, error }, cfg.write_timeout);
}

/// Maps an admitted request's serve-side failure onto the wire.
fn wire_error(e: ServeError) -> WireError {
    match e {
        ServeError::DeadlineExpired { waited } => WireError::DeadlineExpired {
            waited_us: waited.as_micros() as u64,
        },
        ServeError::WorkerPanic(msg) => WireError::WorkerPanic(msg),
        ServeError::Unservable(msg) => WireError::Unservable(msg),
        // Repairs never ride the wire; a session refusal here would mean a
        // protocol bug, and BadRequest is its honest spelling.
        ServeError::RejectedDelta(msg) => WireError::BadRequest(msg),
    }
}

// ---------------------------------------------------------------------------
// PlanClient
// ---------------------------------------------------------------------------

/// Client-side configuration of a [`PlanClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for dialing the server.
    pub connect_timeout: Duration,
    /// Deadline for one response read (covers the whole solve).
    pub request_timeout: Duration,
    /// Deadline for writing one request frame.
    pub write_timeout: Duration,
    /// Bounded retry budget for retryable transport faults (0 = one
    /// attempt, no retries).
    pub retries: u32,
    /// First retry backoff; doubles per consecutive retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed of the deterministic retry jitter (vary per client to
    /// de-synchronize a fleet without losing reproducibility).
    pub jitter_seed: u64,
    /// The largest frame accepted.
    pub max_frame_len: usize,
    /// Re-verify each served artifact's certificate against the local
    /// copy of the instance before accepting it.
    pub verify: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(10),
            retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x5eed_cafe,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            verify: true,
        }
    }
}

/// A typed client-side failure: either the transport broke (possibly
/// after exhausting retries) or the server answered with a typed refusal.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed.
    Transport(TransportError),
    /// The server refused or failed the request, typed.
    Serve(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A successfully served remote plan.
#[derive(Debug, Clone)]
pub struct RemotePlan {
    /// The certified artifact (verified locally when
    /// [`ClientConfig::verify`] is on).
    pub artifact: PlanArtifact,
    /// `true` when the server served it from its memo cache.
    pub memo_hit: bool,
    /// `true` when the plan was deadline-degraded.
    pub degraded: bool,
    /// Transport retries this request burned before succeeding.
    pub retries: u32,
}

/// A retrying plan client. One connection, lazily dialed and re-dialed:
/// a retryable transport fault drops the connection, backs off
/// (exponential with deterministic seeded jitter), reconnects, and
/// re-sends — safe because solves are idempotent under their memo key.
pub struct PlanClient {
    addr: NetAddr,
    cfg: ClientConfig,
    conn: Option<NetStream>,
    rtt: Option<Duration>,
    next_id: u64,
    rng: u64,
    retries_total: u64,
}

impl PlanClient {
    /// A client for `addr` (no connection is made until the first call).
    pub fn new(addr: NetAddr, cfg: ClientConfig) -> Self {
        PlanClient {
            addr,
            cfg,
            conn: None,
            rtt: None,
            next_id: 1,
            rng: cfg.jitter_seed | 1,
            retries_total: 0,
        }
    }

    /// The last observed round-trip estimate (handshake or ping).
    pub fn rtt(&self) -> Option<Duration> {
        self.rtt
    }

    /// Total transport retries burned over this client's lifetime.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Drops the connection; the next call re-dials.
    pub fn disconnect(&mut self) {
        if let Some(conn) = self.conn.take() {
            conn.shutdown();
        }
    }

    fn xorshift(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Backoff for the `attempt`-th retry (0-based): exponential from
    /// `backoff_base`, capped, times a deterministic jitter in [1, 1.5).
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cfg.backoff_max);
        base + Duration::from_nanos(
            (base.as_nanos() as u64 / 2).wrapping_mul(self.xorshift() % 1024) / 1024,
        )
    }

    /// Dials and handshakes, measuring the round trip as the RTT estimate.
    fn ensure_connected(&mut self) -> Result<(), TransportError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut stream = self.addr.connect(self.cfg.connect_timeout)?;
        let t = Instant::now();
        send_request(&mut stream, &hello(), self.cfg.write_timeout)?;
        match recv_response(
            &mut stream,
            self.cfg.max_frame_len,
            self.cfg.connect_timeout,
        )? {
            Some(NetResponse::HelloAck { codec_version, .. }) => {
                if codec_version != SCHEMA_VERSION {
                    return Err(TransportError::VersionSkew {
                        found: codec_version,
                        expected: SCHEMA_VERSION,
                    });
                }
                self.rtt = Some(t.elapsed());
                self.conn = Some(stream);
                Ok(())
            }
            Some(NetResponse::Error { error, .. }) => Err(TransportError::Protocol(format!(
                "handshake refused: {error}"
            ))),
            Some(_) => Err(TransportError::Protocol("expected HelloAck".to_string())),
            None => Err(TransportError::Io(
                "server closed during handshake".to_string(),
            )),
        }
    }

    /// One heartbeat round trip; refreshes the RTT estimate.
    pub fn ping(&mut self) -> Result<Duration, TransportError> {
        self.ensure_connected()?;
        let nonce = self.xorshift();
        let conn = self.conn.as_mut().expect("connected above");
        let t = Instant::now();
        let sent = send_request(conn, &NetRequest::Ping { nonce }, self.cfg.write_timeout);
        if let Err(e) = sent {
            self.disconnect();
            return Err(e);
        }
        match recv_response(conn, self.cfg.max_frame_len, self.cfg.connect_timeout) {
            Ok(Some(NetResponse::Pong { nonce: echoed })) if echoed == nonce => {
                let rtt = t.elapsed();
                self.rtt = Some(rtt);
                Ok(rtt)
            }
            Ok(_) => {
                self.disconnect();
                Err(TransportError::Protocol(
                    "expected matching Pong".to_string(),
                ))
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Asks the server to begin a graceful drain; returns how many
    /// requests were still in flight.
    pub fn drain(&mut self) -> Result<u64, TransportError> {
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("connected above");
        if let Err(e) = send_request(conn, &NetRequest::Drain, self.cfg.write_timeout) {
            self.disconnect();
            return Err(e);
        }
        match recv_response(conn, self.cfg.max_frame_len, self.cfg.request_timeout) {
            Ok(Some(NetResponse::DrainAck { in_flight })) => Ok(in_flight),
            Ok(_) => {
                self.disconnect();
                Err(TransportError::Protocol("expected DrainAck".to_string()))
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }

    /// Solves an instance remotely under an optional deadline budget,
    /// with bounded retries on retryable transport faults.
    ///
    /// Deadline propagation: the client subtracts half its observed RTT
    /// (the forward-transit estimate) from the budget before sending, so
    /// the server sees the time that is genuinely left. A budget smaller
    /// than the transit time is sent as zero and comes back as a typed
    /// [`WireError::DeadlineExpired`] — expired in transit, not wasted on
    /// a solve nobody can use.
    ///
    /// The budget is a *per-call* deadline, not a per-attempt one: each
    /// retry's budget is the time genuinely left after the attempts and
    /// backoff sleeps already spent, backoff sleeps never run past the
    /// deadline, and a deadline that expires between attempts fails
    /// locally with a typed [`WireError::DeadlineExpired`] instead of
    /// burning the rest of the retry budget.
    pub fn solve(
        &mut self,
        bench: &Benchmark,
        synthesis: &Synthesis,
        config: &PdwConfig,
        budget: Option<Duration>,
    ) -> Result<RemotePlan, ClientError> {
        let start = Instant::now();
        let deadline = budget.map(|b| start + b);
        let mut attempt = 0u32;
        loop {
            let remaining = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Err(ClientError::Serve(WireError::DeadlineExpired {
                            waited_us: start.elapsed().as_micros() as u64,
                        }));
                    }
                    Some(left)
                }
                None => None,
            };
            match self.solve_once(bench, synthesis, config, remaining) {
                Ok(mut plan) => {
                    plan.retries = attempt;
                    return Ok(plan);
                }
                Err(ClientError::Transport(e)) if e.retryable() && attempt < self.cfg.retries => {
                    self.disconnect();
                    self.retries_total += 1;
                    let mut pause = self.backoff(attempt);
                    if let Some(d) = deadline {
                        pause = pause.min(d.saturating_duration_since(Instant::now()));
                    }
                    std::thread::sleep(pause);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn solve_once(
        &mut self,
        bench: &Benchmark,
        synthesis: &Synthesis,
        config: &PdwConfig,
        budget: Option<Duration>,
    ) -> Result<RemotePlan, ClientError> {
        self.ensure_connected().map_err(ClientError::Transport)?;
        let transit = self.rtt.unwrap_or_default() / 2;
        let budget_us = budget.map(|b| b.saturating_sub(transit).as_micros() as u64);
        // Bound the response wait by the budget (plus the return transit
        // and a small grace for the server's typed expiry to arrive): a
        // dead transport must not hold the caller past its deadline.
        let read_timeout = match budget {
            Some(b) => self
                .cfg
                .request_timeout
                .min(b + transit + Duration::from_millis(100)),
            None => self.cfg.request_timeout,
        };
        let id = self.next_id;
        self.next_id += 1;
        let req = NetRequest::Solve {
            id,
            budget_us,
            solve: Box::new(SolveRequest {
                bench: bench.clone(),
                synthesis: synthesis.clone(),
                config: config.clone(),
            }),
        };
        let conn = self.conn.as_mut().expect("connected above");
        if let Err(e) = send_request(conn, &req, self.cfg.write_timeout) {
            self.disconnect();
            return Err(ClientError::Transport(e));
        }
        loop {
            match recv_response(conn, self.cfg.max_frame_len, read_timeout) {
                // A stale Pong from an earlier ping is not this answer.
                Ok(Some(NetResponse::Pong { .. })) => continue,
                Ok(Some(NetResponse::Plan {
                    id: rid,
                    memo_hit,
                    degraded,
                    artifact,
                })) if rid == id => {
                    if self.cfg.verify {
                        if let Err(msg) = artifact.verify(bench, synthesis) {
                            self.disconnect();
                            return Err(ClientError::Transport(TransportError::Protocol(format!(
                                "served artifact failed its certificate: {msg}"
                            ))));
                        }
                    }
                    return Ok(RemotePlan {
                        artifact: *artifact,
                        memo_hit,
                        degraded,
                        retries: 0,
                    });
                }
                Ok(Some(NetResponse::Error { id: rid, error })) if rid == id || rid == 0 => {
                    // A draining server is typed at the transport level so
                    // the retry loop knows to stop.
                    if error == WireError::ShuttingDown {
                        self.disconnect();
                        return Err(ClientError::Transport(TransportError::ServerDraining));
                    }
                    return Err(ClientError::Serve(error));
                }
                Ok(Some(_)) => {
                    self.disconnect();
                    return Err(ClientError::Transport(TransportError::Protocol(
                        "response for a different request id".to_string(),
                    )));
                }
                Ok(None) => {
                    self.disconnect();
                    return Err(ClientError::Transport(TransportError::Io(
                        "server closed mid-request".to_string(),
                    )));
                }
                Err(e) => {
                    self.disconnect();
                    return Err(ClientError::Transport(e));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Socket load driver (soak tests, bench_serve --socket)
// ---------------------------------------------------------------------------

/// One socket-load request: a pool index that arrives `at_us` after
/// stream start.
#[derive(Debug, Clone, Copy)]
pub struct SocketJob {
    /// Arrival time, microseconds after run start (ignored unpaced).
    pub at_us: u64,
    /// Which `(bench, synthesis)` pool entry to solve.
    pub pool_index: usize,
    /// Per-request deadline budget.
    pub budget: Option<Duration>,
}

/// Aggregate results of one socket load run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SocketLoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Requests served a verified plan.
    pub served: usize,
    /// Served responses that hit the server's memo cache.
    pub memo_hits: usize,
    /// Served responses that were deadline-degraded.
    pub degraded: usize,
    /// Requests that ended in a typed transport error.
    pub transport_errors: usize,
    /// Requests that ended in a typed serve error.
    pub serve_errors: usize,
    /// Transport retries burned across all clients.
    pub retries: u64,
    /// One line per failed request: `"<kind>: <display>"` — every entry
    /// here is typed by construction; an untyped failure is a panic.
    pub errors: Vec<String>,
    /// Median end-to-end latency of served requests, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency of served requests, ms.
    pub p99_ms: f64,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
}

/// Drives `jobs` against a socket endpoint from `clients` concurrent
/// [`PlanClient`]s (job *i* goes to client *i* mod `clients`; each client
/// gets a distinct jitter seed). With `pace`, submissions honor their
/// `at_us` arrival times against real wall time. Every job's outcome is
/// typed: served plans are certificate-verified, failures are collected
/// as [`ClientError`] strings.
pub fn run_socket_load(
    addr: &NetAddr,
    pool: &[(Benchmark, Synthesis)],
    config: &PdwConfig,
    jobs: &[SocketJob],
    clients: usize,
    client_cfg: ClientConfig,
    pace: bool,
) -> SocketLoadReport {
    assert!(!pool.is_empty(), "socket load needs a non-empty pool");
    let clients = clients.max(1);
    let wall0 = Instant::now();
    struct LaneOut {
        served: usize,
        memo_hits: usize,
        degraded: usize,
        transport_errors: usize,
        serve_errors: usize,
        retries: u64,
        errors: Vec<String>,
        latencies_ms: Vec<f64>,
    }
    let lanes: Vec<LaneOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|lane| {
                scope.spawn(move || {
                    let mut cfg = client_cfg;
                    cfg.jitter_seed = client_cfg.jitter_seed.wrapping_add(lane as u64);
                    let mut client = PlanClient::new(addr.clone(), cfg);
                    let mut out = LaneOut {
                        served: 0,
                        memo_hits: 0,
                        degraded: 0,
                        transport_errors: 0,
                        serve_errors: 0,
                        retries: 0,
                        errors: Vec::new(),
                        latencies_ms: Vec::new(),
                    };
                    for job in jobs.iter().skip(lane).step_by(clients) {
                        if pace {
                            let target = Duration::from_micros(job.at_us);
                            let elapsed = wall0.elapsed();
                            if target > elapsed {
                                std::thread::sleep(target - elapsed);
                            }
                        }
                        let (bench, synthesis) = &pool[job.pool_index % pool.len()];
                        let t = Instant::now();
                        match client.solve(bench, synthesis, config, job.budget) {
                            Ok(plan) => {
                                out.served += 1;
                                out.latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
                                if plan.memo_hit {
                                    out.memo_hits += 1;
                                }
                                if plan.degraded {
                                    out.degraded += 1;
                                }
                            }
                            Err(e) => {
                                match &e {
                                    ClientError::Transport(_) => out.transport_errors += 1,
                                    ClientError::Serve(_) => out.serve_errors += 1,
                                }
                                out.errors.push(e.to_string());
                            }
                        }
                    }
                    out.retries = client.retries_total();
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load lane panicked"))
            .collect()
    });
    let wall_s = wall0.elapsed().as_secs_f64();
    let mut report = SocketLoadReport {
        requests: jobs.len(),
        served: 0,
        memo_hits: 0,
        degraded: 0,
        transport_errors: 0,
        serve_errors: 0,
        retries: 0,
        errors: Vec::new(),
        p50_ms: 0.0,
        p99_ms: 0.0,
        wall_s,
    };
    let mut latencies: Vec<f64> = Vec::new();
    for lane in lanes {
        report.served += lane.served;
        report.memo_hits += lane.memo_hits;
        report.degraded += lane.degraded;
        report.transport_errors += lane.transport_errors;
        report.serve_errors += lane.serve_errors;
        report.retries += lane.retries;
        report.errors.extend(lane.errors);
        latencies.extend(lane.latencies_ms);
    }
    report.p50_ms = percentile(&mut latencies, 0.50);
    report.p99_ms = percentile(&mut latencies, 0.99);
    report
}
