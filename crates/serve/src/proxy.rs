//! A deterministic in-repo chaos proxy for socket fault injection.
//!
//! [`ChaosProxy`] sits between a [`PlanClient`](crate::net::PlanClient)
//! (or a [`SocketExecutor`](pathdriver_wash::SocketExecutor)) and a real
//! endpoint, forwarding bytes verbatim except on the connections its
//! [`ChaosSpec`] names, where it misbehaves in one precisely chosen way.
//! Faults are keyed to the *n*-th accepted connection — the same
//! connection-count trigger `PDW_WORKER_CHAOS` uses (`die:N`,
//! `corrupt:N`) — so a test run is bit-for-bit reproducible: no clocks,
//! no randomness, no `nth` drift between runs. Because retries reconnect,
//! "fault connection *n*" composes naturally with "the retry (connection
//! *n+1*) must succeed".
//!
//! Spec grammar (also accepted from a CLI flag or env var):
//!
//! | spec | behavior on the matched connection |
//! |------|------------------------------------|
//! | `drop:N` | close immediately on accept (connect succeeds, then EOF) |
//! | `delay:N:MS` | stall the first server→client byte for `MS` ms |
//! | `truncate:N:BYTES` | forward only the first `BYTES` of the response, then close |
//! | `corrupt:N` | flip one byte in the first response chunk (digest breaks, frame torn) |
//! | `blackhole:N` | swallow the response entirely and hold the connection open (client read times out) |
//! | `disconnect:N` | close both ends the moment the response starts |

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pathdriver_wash::NetAddr;

/// What to do to a faulted connection's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Close the client connection immediately on accept.
    Drop,
    /// Stall the first server→client byte for this many milliseconds.
    Delay(u64),
    /// Forward only this many server→client bytes, then close.
    Truncate(usize),
    /// Flip one byte (XOR `0x80`) in the first server→client chunk.
    Corrupt,
    /// Swallow every server→client byte; hold the connection open.
    BlackHole,
    /// Close both ends as soon as the first server→client byte arrives.
    Disconnect,
}

/// Which connection to fault, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// The fault.
    pub mode: ChaosMode,
    /// The 1-based index of the accepted connection to fault (all others
    /// are forwarded verbatim).
    pub nth: usize,
}

impl ChaosSpec {
    /// Parses the spec grammar (see the [module docs](self)).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let mode = parts.next().unwrap_or("");
        let nth: usize = parts
            .next()
            .ok_or_else(|| format!("chaos spec '{s}' needs mode:N"))?
            .parse()
            .map_err(|e| format!("chaos spec '{s}': bad connection index: {e}"))?;
        if nth == 0 {
            return Err(format!("chaos spec '{s}': connection index is 1-based"));
        }
        let param = parts.next();
        if parts.next().is_some() {
            return Err(format!("chaos spec '{s}': too many fields"));
        }
        let need = |name: &str| {
            param
                .ok_or_else(|| format!("chaos spec '{s}' needs {name}"))
                .and_then(|p| {
                    p.parse::<u64>()
                        .map_err(|e| format!("chaos spec '{s}': {e}"))
                })
        };
        let mode = match mode {
            "drop" => ChaosMode::Drop,
            "delay" => ChaosMode::Delay(need("mode:N:MS")?),
            "truncate" => ChaosMode::Truncate(need("mode:N:BYTES")? as usize),
            "corrupt" => ChaosMode::Corrupt,
            "blackhole" => ChaosMode::BlackHole,
            "disconnect" => ChaosMode::Disconnect,
            other => return Err(format!("unknown chaos mode '{other}'")),
        };
        if param.is_some() && !matches!(mode, ChaosMode::Delay(_) | ChaosMode::Truncate(_)) {
            return Err(format!("chaos spec '{s}': mode takes no parameter"));
        }
        Ok(ChaosSpec { mode, nth })
    }

    /// Every mode, faulting connection `nth` — the sweep used by the
    /// chaos tests and CI.
    pub fn all_modes(nth: usize) -> Vec<ChaosSpec> {
        vec![
            ChaosSpec {
                mode: ChaosMode::Drop,
                nth,
            },
            ChaosSpec {
                mode: ChaosMode::Delay(50),
                nth,
            },
            ChaosSpec {
                mode: ChaosMode::Truncate(16),
                nth,
            },
            ChaosSpec {
                mode: ChaosMode::Corrupt,
                nth,
            },
            ChaosSpec {
                mode: ChaosMode::BlackHole,
                nth,
            },
            ChaosSpec {
                mode: ChaosMode::Disconnect,
                nth,
            },
        ]
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.mode {
            ChaosMode::Drop => write!(f, "drop:{}", self.nth),
            ChaosMode::Delay(ms) => write!(f, "delay:{}:{ms}", self.nth),
            ChaosMode::Truncate(n) => write!(f, "truncate:{}:{n}", self.nth),
            ChaosMode::Corrupt => write!(f, "corrupt:{}", self.nth),
            ChaosMode::BlackHole => write!(f, "blackhole:{}", self.nth),
            ChaosMode::Disconnect => write!(f, "disconnect:{}", self.nth),
        }
    }
}

/// The proxy: listens on an ephemeral loopback port, forwards every
/// connection to `upstream`, and misbehaves exactly once — on the
/// connection the spec names. `None` for the spec makes it a faithful
/// (but still counting) forwarder.
pub struct ChaosProxy {
    local: NetAddr,
    accepted: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream`.
    pub fn start(upstream: NetAddr, spec: Option<ChaosSpec>) -> Self {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind chaos proxy");
        let local = NetAddr::Tcp(listener.local_addr().expect("proxy local addr").to_string());
        listener
            .set_nonblocking(true)
            .expect("nonblocking proxy listener");
        let accepted = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let t_accepted = Arc::clone(&accepted);
        let t_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pdw-chaos-accept".to_string())
            .spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                while !t_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let k = t_accepted.fetch_add(1, Ordering::SeqCst) + 1;
                            let fault = spec.filter(|s| s.nth == k).map(|s| s.mode);
                            if fault == Some(ChaosMode::Drop) {
                                drop(client);
                                continue;
                            }
                            let upstream = upstream.clone();
                            let stop = Arc::clone(&t_stop);
                            pumps.push(
                                std::thread::Builder::new()
                                    .name(format!("pdw-chaos-conn-{k}"))
                                    .spawn(move || proxy_conn(client, &upstream, fault, &stop))
                                    .expect("spawn proxy conn"),
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
                for p in pumps {
                    let _ = p.join();
                }
            })
            .expect("spawn chaos accept thread");
        ChaosProxy {
            local,
            accepted,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// The proxy's dialable address.
    pub fn local_addr(&self) -> NetAddr {
        self.local.clone()
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops the proxy and joins its threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Forwards one connection, applying the fault (if any) to the
/// server→client direction — the one that breaks a response mid-frame.
fn proxy_conn(client: TcpStream, upstream: &NetAddr, fault: Option<ChaosMode>, stop: &AtomicBool) {
    let server = match upstream.connect(Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => return, // client sees EOF: a typed Io/TornFrame fault
    };
    // NetStream doesn't expose its inner TcpStream; pump via clones of
    // both halves with short read ticks so `stop` is honored.
    let c2s_client = match client.try_clone() {
        Ok(c) => c,
        Err(_) => return,
    };
    let mut s2c_server = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let c_stop = AtomicBool::new(false);
    let conn_stop = &c_stop;
    std::thread::scope(|scope| {
        // client → server: always verbatim (requests are never the fault
        // target; response-path faults are what retries must survive).
        let c2s = scope.spawn(move || pump(c2s_client, server, stop, conn_stop));
        let s2c_fault = fault;
        let mut client_w = client;
        let s2c = scope.spawn(move || {
            let mut first = true;
            let mut forwarded = 0usize;
            let mut buf = [0u8; 16 * 1024];
            let _ = s2c_server.set_read_timeout(Some(Duration::from_millis(20)));
            loop {
                if stop.load(Ordering::SeqCst) || conn_stop.load(Ordering::SeqCst) {
                    break;
                }
                let n = match s2c_server.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => n,
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(_) => break,
                };
                let chunk = &mut buf[..n];
                match s2c_fault {
                    Some(ChaosMode::BlackHole) => {
                        // Swallow; keep the connection open so the client
                        // is stuck waiting and must hit its read timeout.
                        continue;
                    }
                    Some(ChaosMode::Disconnect) => {
                        conn_stop.store(true, Ordering::SeqCst);
                        let _ = client_w.shutdown(std::net::Shutdown::Both);
                        s2c_server.shutdown();
                        break;
                    }
                    Some(ChaosMode::Delay(ms)) if first => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    Some(ChaosMode::Corrupt) if first => {
                        chunk[n - 1] ^= 0x80;
                    }
                    _ => {}
                }
                first = false;
                let send = if let Some(ChaosMode::Truncate(cap)) = s2c_fault {
                    let left = cap.saturating_sub(forwarded);
                    &chunk[..n.min(left)]
                } else {
                    &chunk[..n]
                };
                if !send.is_empty() {
                    if client_w
                        .write_all(send)
                        .and_then(|()| client_w.flush())
                        .is_err()
                    {
                        break;
                    }
                    forwarded += send.len();
                }
                if matches!(s2c_fault, Some(ChaosMode::Truncate(cap)) if forwarded >= cap) {
                    conn_stop.store(true, Ordering::SeqCst);
                    let _ = client_w.shutdown(std::net::Shutdown::Both);
                    s2c_server.shutdown();
                    break;
                }
            }
            conn_stop.store(true, Ordering::SeqCst);
        });
        let _ = c2s.join();
        let _ = s2c.join();
    });
}

/// Verbatim one-direction pump with a short read tick so stop flags are
/// honored promptly.
fn pump(
    mut from: TcpStream,
    mut to: pathdriver_wash::NetStream,
    stop: &AtomicBool,
    conn_stop: &AtomicBool,
) {
    let mut buf = [0u8; 16 * 1024];
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    loop {
        if stop.load(Ordering::SeqCst) || conn_stop.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    conn_stop.store(true, Ordering::SeqCst);
    to.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_grammar_round_trips() {
        for s in [
            "drop:1",
            "delay:2:500",
            "truncate:3:64",
            "corrupt:4",
            "blackhole:5",
            "disconnect:6",
        ] {
            let spec = ChaosSpec::parse(s).unwrap();
            assert_eq!(spec.to_string(), s, "display drifted for {s}");
        }
        assert!(ChaosSpec::parse("drop:0").is_err(), "1-based index");
        assert!(ChaosSpec::parse("drop").is_err());
        assert!(ChaosSpec::parse("delay:1").is_err(), "delay needs MS");
        assert!(ChaosSpec::parse("corrupt:1:9").is_err(), "no parameter");
        assert!(ChaosSpec::parse("melt:1").is_err());
        assert_eq!(ChaosSpec::all_modes(2).len(), 6);
        assert!(ChaosSpec::all_modes(2).iter().all(|s| s.nth == 2));
    }
}
