//! The plan server: queue → batcher → degradation ladder → caches.
//!
//! [`PlanServer`] is a long-running planning service. [`submit`] enqueues a
//! request behind a cost-budget admission gate (typed
//! [`Rejected::Saturated`] shedding) and returns a [`Ticket`]; a pool of
//! worker threads drains the queue in batches of up to
//! [`max_batch`](ServeConfig::max_batch) — the [`plan_batch`] fan-out
//! pattern applied to a live queue, with per-worker warm state carried by
//! the [`ContextLru`] instead of a per-worker pool. Each request runs
//! through:
//!
//! 1. **deadline check** — a request whose budget expired while queued
//!    returns a typed [`ServeError::DeadlineExpired`] without touching the
//!    planner, and without poisoning the rest of its batch;
//! 2. **memo cache** — solves are keyed by the versioned
//!    [`memo_key`]`(instance_hash, config_fingerprint)` with single-flight
//!    deduplication ([`MemoCache`]): one oracle-checked solve is served to
//!    every concurrent waiter. With a [`memo_path`](ServeConfig::memo_path)
//!    configured, a second, persistent tier sits underneath: memo leaders
//!    consult the [`MemoStore`] of [`PlanArtifact`]s before solving, and a
//!    stored artifact is served **only** after its verification
//!    certificate re-verifies against the requester's instance
//!    ([`PlanArtifact::verify`]) — then promoted into the in-memory memo.
//!    Fresh non-degraded solves are certified and written back, so the
//!    store survives restarts;
//! 3. **the ladder** — cache misses run
//!    [`plan_resilient_ctx`] under the request's remaining budget mapped
//!    onto `pipeline_budget`, so a tight deadline degrades the solve
//!    (PDW → greedy → DAWO) instead of failing it. Deadline-degraded plans
//!    are served to their requester but *not* memoized — the memo stays
//!    canonical;
//! 4. **repair routing** — a [`ServeRequest::Repair`] against a known
//!    instance goes through that instance's [`RepairSession`]
//!    (delta-scoped cache invalidation) instead of a cold solve. Sessions
//!    own an evolving copy of the instance: repairs accumulate, while
//!    plain solves keep addressing the *original* instance.
//!
//! Every decision about time reads the injectable [`Clock`]; every panic
//! in a worker (or injected through the test [`Hook`]) is caught per
//! request and surfaced as a typed [`ServeError::WorkerPanic`] — the
//! server stays up, mirroring `try_par_map_ctx`'s guarantees.
//!
//! [`submit`]: PlanServer::submit
//! [`plan_batch`]: pathdriver_wash::plan_batch
//! [`MemoCache`]: crate::cache::MemoCache
//! [`ContextLru`]: crate::cache::ContextLru
//! [`plan_resilient_ctx`]: pathdriver_wash::plan_resilient_ctx
//! [`RepairSession`]: pathdriver_wash::RepairSession

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathdriver_wash::{
    chip_hash, config_fingerprint, instance_hash, memo_key, plan_resilient_ctx, ContextParts,
    PdwConfig, PlanArtifact, PlanContext, PlanDelta, PlanOutcome, RepairSession, RungRejection,
};
use pdw_assay::benchmarks::Benchmark;
use pdw_synth::Synthesis;

use crate::cache::{ContextCheckout, ContextLru, MemoCache, MemoClaim, ServedPlan};
use crate::clock::{Clock, WallClock};
use crate::store::{FileMemoStore, MemoStore};

/// A planning instance as the server sees it: the benchmark + synthesis
/// with both canonical hashes and the admission-control cost precomputed.
#[derive(Debug, Clone)]
pub struct Instance {
    bench: Benchmark,
    synthesis: Synthesis,
    chip_hash: u64,
    instance_hash: u64,
    cost: u64,
}

impl Instance {
    /// Wraps an instance, computing its canonical hashes and cost (the
    /// base schedule's task count — a cheap proxy for solve effort).
    pub fn new(bench: Benchmark, synthesis: Synthesis) -> Self {
        let chip = chip_hash(&synthesis.chip);
        let inst = instance_hash(&bench, &synthesis);
        let cost = synthesis.schedule.tasks().count() as u64 + 1;
        Instance {
            bench,
            synthesis,
            chip_hash: chip,
            instance_hash: inst,
            cost,
        }
    }

    /// The benchmark.
    pub fn bench(&self) -> &Benchmark {
        &self.bench
    }

    /// The synthesized chip + base schedule.
    pub fn synthesis(&self) -> &Synthesis {
        &self.synthesis
    }

    /// Canonical hash of the chip (the context-LRU key).
    pub fn chip_hash(&self) -> u64 {
        self.chip_hash
    }

    /// Canonical hash of the full instance (the memo-cache key component).
    pub fn instance_hash(&self) -> u64 {
        self.instance_hash
    }

    /// The admission-control cost estimate.
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

/// What a request asks the server to do.
#[derive(Clone)]
pub enum ServeRequest {
    /// Plan the instance (or serve it from the memo cache).
    Solve {
        /// The instance to plan.
        instance: Arc<Instance>,
    },
    /// Apply a delta to the instance's repair session and serve the
    /// repaired plan.
    Repair {
        /// The base instance whose session the delta targets.
        instance: Arc<Instance>,
        /// The change to apply.
        delta: PlanDelta,
    },
}

impl ServeRequest {
    /// The instance the request targets.
    pub fn instance(&self) -> &Arc<Instance> {
        match self {
            ServeRequest::Solve { instance } | ServeRequest::Repair { instance, .. } => instance,
        }
    }
}

/// Why a request was refused *admission* (before ever being queued).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The queue's cost budget is exhausted: admitting this request would
    /// push the queued cost past the configured budget.
    Saturated {
        /// Cost already queued.
        queued_cost: u64,
        /// This request's cost.
        cost: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Saturated {
                queued_cost,
                cost,
                budget,
            } => write!(
                f,
                "saturated: queued cost {queued_cost} + request cost {cost} exceeds budget {budget}"
            ),
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

/// Why an *admitted* request could not be served.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request's deadline expired (in queue, or waiting on a memo
    /// leader) before a plan could be served.
    DeadlineExpired {
        /// How long the request had been waiting when it expired.
        waited: Duration,
    },
    /// The worker processing the request panicked; the panic was caught
    /// and the server kept running.
    WorkerPanic(String),
    /// Every rung of the degradation ladder was rejected.
    Unservable(String),
    /// The repair delta was malformed for its session (unknown op/port,
    /// off-grid fault).
    RejectedDelta(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExpired { waited } => {
                write!(f, "deadline expired after waiting {:?}", waited)
            }
            ServeError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Unservable(msg) => write!(f, "no ladder rung served: {msg}"),
            ServeError::RejectedDelta(msg) => write!(f, "repair delta rejected: {msg}"),
        }
    }
}

/// A successfully served plan.
#[derive(Debug, Clone)]
pub struct Served {
    /// The verified plan (shared with the memo cache on hits).
    pub plan: Arc<ServedPlan>,
    /// `true` when the plan came straight from the memo cache.
    pub memo_hit: bool,
    /// `true` when the plan came from a repair session.
    pub repaired: bool,
    /// `true` when the plan was degraded by this request's deadline (such
    /// plans are served but never memoized).
    pub degraded: bool,
    /// Wall time spent *processing* this request, seconds (real clock —
    /// a measurement, not a control input).
    pub service_s: f64,
}

/// What a request resolves to once admitted.
pub type Response = Result<Served, ServeError>;

#[derive(Default)]
struct SlotState {
    response: Option<Response>,
    latency: Option<Duration>,
}

#[derive(Default)]
struct Slot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl Slot {
    fn complete(&self, response: Response, latency: Duration) {
        let mut state = self.state.lock().unwrap();
        state.response = Some(response);
        state.latency = Some(latency);
        drop(state);
        self.done.notify_all();
    }
}

/// A handle to an admitted request's eventual response.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

impl Ticket {
    /// The server-assigned request id (stable across the hooks and logs).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response is ready.
    pub fn wait(&self) -> Response {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            if let Some(response) = &state.response {
                return response.clone();
            }
            state = self.slot.done.wait(state).unwrap();
        }
    }

    /// The response if it is already ready.
    pub fn try_response(&self) -> Option<Response> {
        self.slot.state.lock().unwrap().response.clone()
    }

    /// Queue-to-completion latency on the server's clock, once completed.
    pub fn latency(&self) -> Option<Duration> {
        self.slot.state.lock().unwrap().latency
    }
}

/// Where the chaos hook fires during request processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookPoint {
    /// Right after a worker picks the request out of its batch.
    Dequeue,
    /// Right after the request became the memo leader, before the solve.
    Solve,
}

/// A test hook called at [`HookPoint`]s with the request id. Panicking in
/// the hook simulates a worker crash at that point.
pub type Hook = Arc<dyn Fn(HookPoint, u64) + Send + Sync>;

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue (min 1).
    pub workers: usize,
    /// Max requests a worker drains per batch (min 1).
    pub max_batch: usize,
    /// Admission budget: total estimated cost allowed in the queue at
    /// once. `u64::MAX` disables shedding.
    pub queue_cost_budget: u64,
    /// Warm-context LRU capacity (entries; 0 disables).
    pub context_lru: usize,
    /// Planner configuration for every solve (the memo key includes its
    /// [`config_fingerprint`]).
    pub planner: PdwConfig,
    /// Deadline applied to requests submitted without an explicit budget.
    pub default_budget: Option<Duration>,
    /// Path of the persistent memo store (`None` = memory-only memo). The
    /// file is an append-only log of certified [`PlanArtifact`] frames,
    /// compacted on open; entries survive restarts and are served only
    /// after certificate re-verification.
    pub memo_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            queue_cost_budget: u64::MAX,
            context_lru: 8,
            planner: PdwConfig {
                ilp: false,
                threads: 1,
                ..PdwConfig::default()
            },
            default_budget: None,
            memo_path: None,
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests shed at admission ([`Rejected::Saturated`]).
    pub shed: u64,
    /// Requests served a plan.
    pub served: u64,
    /// Degradation-ladder runs (memo leaders + initial session plans).
    pub solves: u64,
    /// Repair-session repairs performed.
    pub repairs: u64,
    /// Solves served straight from the memo cache.
    pub memo_hits: u64,
    /// Worker panics caught and surfaced as typed errors.
    pub worker_panics: u64,
    /// Requests that expired before a plan could be served.
    pub deadline_expired: u64,
    /// Requests whose every ladder rung was rejected.
    pub unservable: u64,
    /// Malformed repair deltas rejected by their session.
    pub rejected_deltas: u64,
    /// Context-LRU checkouts that served full warm parts.
    pub lru_warm_hits: u64,
    /// Context-LRU checkouts that served only a scratch pool.
    pub lru_pool_hits: u64,
    /// Context-LRU checkouts that found nothing.
    pub lru_misses: u64,
    /// Context-LRU entries evicted over capacity.
    pub lru_evictions: u64,
    /// Solves served from the persistent memo store after their
    /// certificate re-verified against the requester's instance.
    pub persist_hits: u64,
    /// Persisted artifacts rejected at serve time (certificate failed
    /// re-verification, or fingerprint mismatch); a fresh solve replaced
    /// them.
    pub persist_rejected: u64,
    /// Live entries in the persistent memo store (0 without one).
    pub persist_entries: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    solves: AtomicU64,
    repairs: AtomicU64,
    memo_hits: AtomicU64,
    worker_panics: AtomicU64,
    deadline_expired: AtomicU64,
    unservable: AtomicU64,
    rejected_deltas: AtomicU64,
    persist_hits: AtomicU64,
    persist_rejected: AtomicU64,
}

struct QueuedRequest {
    id: u64,
    request: ServeRequest,
    submitted_at: Duration,
    deadline_at: Option<Duration>,
    cost: u64,
    slot: Arc<Slot>,
}

struct QueueState {
    deque: VecDeque<QueuedRequest>,
    queued_cost: u64,
    open: bool,
    paused: bool,
}

struct Inner {
    cfg: ServeConfig,
    config_fp: u64,
    clock: Arc<dyn Clock>,
    hook: Option<Hook>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    memo: MemoCache,
    store: Option<Arc<dyn MemoStore>>,
    contexts: Mutex<ContextLru>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<RepairSession>>>>,
    next_id: AtomicU64,
    counters: Counters,
}

/// The long-running plan server (see the [module docs](self)).
pub struct PlanServer {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PlanServer {
    /// Starts the server with the production wall clock and no hooks.
    pub fn start(cfg: ServeConfig) -> Self {
        Self::start_with(cfg, Arc::new(WallClock::new()), None)
    }

    /// Starts the server with an injected clock and optional chaos hook —
    /// the deterministic-test entry point.
    ///
    /// # Panics
    /// Panics when [`ServeConfig::memo_path`] is set but the store file
    /// cannot be opened or created.
    pub fn start_with(cfg: ServeConfig, clock: Arc<dyn Clock>, hook: Option<Hook>) -> Self {
        let store: Option<Arc<dyn MemoStore>> = cfg.memo_path.as_ref().map(|path| {
            let (store, _report) = FileMemoStore::open(path).expect("open persistent memo store");
            Arc::new(store) as Arc<dyn MemoStore>
        });
        Self::start_with_store(cfg, clock, hook, store)
    }

    /// Starts the server with an explicit persistent memo store (or
    /// `None`), ignoring [`ServeConfig::memo_path`] — the injection point
    /// for custom [`MemoStore`] implementations.
    pub fn start_with_store(
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        hook: Option<Hook>,
        store: Option<Arc<dyn MemoStore>>,
    ) -> Self {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            config_fp: config_fingerprint(&cfg.planner),
            contexts: Mutex::new(ContextLru::new(cfg.context_lru)),
            cfg,
            clock,
            hook,
            store,
            queue: Mutex::new(QueueState {
                deque: VecDeque::new(),
                queued_cost: 0,
                open: true,
                paused: false,
            }),
            queue_cv: Condvar::new(),
            memo: MemoCache::new(),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            counters: Counters::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("pdw-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        PlanServer {
            inner,
            handles: Mutex::new(handles),
        }
    }

    /// The server's clock (the one every deadline decision reads).
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// The fingerprint of the server's planner configuration — half of
    /// every memo key, and the value a networked client's request config
    /// must match ([`crate::net`]).
    pub fn config_fingerprint(&self) -> u64 {
        self.inner.config_fp
    }

    /// Submits a request under the config's default budget.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, Rejected> {
        self.submit_with_budget(request, None)
    }

    /// Submits a request with an explicit deadline budget (`None` falls
    /// back to [`ServeConfig::default_budget`]). Admission is checked
    /// here: a full queue sheds with [`Rejected::Saturated`], a shut-down
    /// server with [`Rejected::ShuttingDown`].
    pub fn submit_with_budget(
        &self,
        request: ServeRequest,
        budget: Option<Duration>,
    ) -> Result<Ticket, Rejected> {
        let inner = &self.inner;
        let cost = request.instance().cost;
        let mut q = inner.queue.lock().unwrap();
        if !q.open {
            return Err(Rejected::ShuttingDown);
        }
        if q.queued_cost.saturating_add(cost) > inner.cfg.queue_cost_budget {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Saturated {
                queued_cost: q.queued_cost,
                cost,
                budget: inner.cfg.queue_cost_budget,
            });
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let now = inner.clock.now();
        let budget = budget.or(inner.cfg.default_budget);
        let slot = Arc::new(Slot::default());
        q.deque.push_back(QueuedRequest {
            id,
            request,
            submitted_at: now,
            deadline_at: budget.map(|b| now + b),
            cost,
            slot: Arc::clone(&slot),
        });
        q.queued_cost += cost;
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        drop(q);
        inner.queue_cv.notify_one();
        Ok(Ticket { id, slot })
    }

    /// Pauses the workers: admitted requests stay queued until
    /// [`resume`](Self::resume). Tests use this to build up precise queue
    /// states before letting the workers run.
    pub fn pause(&self) {
        self.inner.queue.lock().unwrap().paused = true;
        self.inner.queue_cv.notify_all();
    }

    /// Resumes paused workers.
    pub fn resume(&self) {
        self.inner.queue.lock().unwrap().paused = false;
        self.inner.queue_cv.notify_all();
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().unwrap().deque.len()
    }

    /// A snapshot of every counter.
    pub fn stats(&self) -> ServeStats {
        let c = &self.inner.counters;
        let l = self.inner.contexts.lock().unwrap().counters();
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            solves: c.solves.load(Ordering::Relaxed),
            repairs: c.repairs.load(Ordering::Relaxed),
            memo_hits: c.memo_hits.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            unservable: c.unservable.load(Ordering::Relaxed),
            rejected_deltas: c.rejected_deltas.load(Ordering::Relaxed),
            lru_warm_hits: l.warm_hits,
            lru_pool_hits: l.pool_hits,
            lru_misses: l.misses,
            lru_evictions: l.evictions,
            persist_hits: c.persist_hits.load(Ordering::Relaxed),
            persist_rejected: c.persist_rejected.load(Ordering::Relaxed),
            persist_entries: self.inner.store.as_ref().map_or(0, |s| s.len() as u64),
        }
    }

    /// The current state of `instance`'s repair session, if one exists:
    /// the mutated synthesis plus the last plan it served. Repaired plans
    /// must be verified against *this* synthesis, not the original one —
    /// the session's instance evolves with every delta.
    pub fn repair_state(
        &self,
        instance: &Instance,
    ) -> Option<(Synthesis, Option<pathdriver_wash::WashResult>)> {
        let key = memo_key(instance.instance_hash, self.inner.config_fp);
        let session = self.inner.sessions.lock().unwrap().get(&key).cloned()?;
        let s = session.lock().unwrap();
        Some((
            s.synthesis().clone(),
            s.last().and_then(|o| o.served.clone()),
        ))
    }

    /// Stops admitting, drains the queue, and joins every worker. Every
    /// already-admitted ticket still completes. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.open = false;
            q.paused = false;
        }
        self.inner.queue_cv.notify_all();
        let handles: Vec<_> = self.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    while let Some(batch) = inner.next_batch() {
        for req in batch {
            // One panic isolation boundary per request: a crash (real or
            // injected) poisons neither the batch nor the worker.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| inner.process(&req)));
            let response = match outcome {
                Ok(response) => response,
                Err(payload) => {
                    inner.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::WorkerPanic(panic_message(payload)))
                }
            };
            if response.is_ok() {
                inner.counters.served.fetch_add(1, Ordering::Relaxed);
            }
            let latency = inner.clock.now().saturating_sub(req.submitted_at);
            req.slot.complete(response, latency);
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Inner {
    /// Blocks for the next batch of up to `max_batch` requests; `None`
    /// once the queue is closed and drained.
    fn next_batch(&self) -> Option<Vec<QueuedRequest>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if !q.open && q.deque.is_empty() {
                return None;
            }
            if !q.paused && !q.deque.is_empty() {
                let take = self.cfg.max_batch.max(1).min(q.deque.len());
                let mut batch = Vec::with_capacity(take);
                for _ in 0..take {
                    let req = q.deque.pop_front().expect("len checked");
                    q.queued_cost -= req.cost;
                    batch.push(req);
                }
                return Some(batch);
            }
            q = self.queue_cv.wait(q).unwrap();
        }
    }

    fn process(&self, req: &QueuedRequest) -> Response {
        if let Some(hook) = &self.hook {
            hook(HookPoint::Dequeue, req.id);
        }
        let now = self.clock.now();
        if let Some(deadline) = req.deadline_at {
            if now >= deadline {
                self.counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExpired {
                    waited: now.saturating_sub(req.submitted_at),
                });
            }
        }
        match &req.request {
            ServeRequest::Solve { instance } => self.solve(req, instance),
            ServeRequest::Repair { instance, delta } => self.repair(req, instance, delta),
        }
    }

    fn solve(&self, req: &QueuedRequest, instance: &Arc<Instance>) -> Response {
        let t = Instant::now();
        let key = memo_key(instance.instance_hash, self.config_fp);
        let clock = &self.clock;
        let give_up = || req.deadline_at.is_some_and(|d| clock.now() >= d);
        let lead = match self.memo.claim(key, give_up) {
            MemoClaim::Hit(plan) => {
                self.counters.memo_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Served {
                    plan,
                    memo_hit: true,
                    repaired: false,
                    degraded: false,
                    service_s: t.elapsed().as_secs_f64(),
                });
            }
            MemoClaim::Expired => {
                self.counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExpired {
                    waited: self.clock.now().saturating_sub(req.submitted_at),
                });
            }
            MemoClaim::Lead(lead) => lead,
        };
        // This request is the leader: it pays for the solve; everyone
        // queued behind the in-flight marker is served the result. A
        // panic from here on drops the guard, which un-claims the key.
        if let Some(hook) = &self.hook {
            hook(HookPoint::Solve, req.id);
        }
        // Persistent tier: a stored artifact is served only after its
        // certificate re-verifies against *this* requester's concrete
        // instance — a stale, corrupt, or mismatched artifact is rejected
        // and replaced by the fresh solve below.
        if let Some(store) = &self.store {
            if let Some(artifact) = store.get(key) {
                let matches = artifact.instance_hash == instance.instance_hash
                    && artifact.config_fingerprint == self.config_fp
                    && artifact
                        .verify(&instance.bench, &instance.synthesis)
                        .is_ok();
                if matches {
                    self.counters.persist_hits.fetch_add(1, Ordering::Relaxed);
                    let plan = Arc::new(ServedPlan {
                        result: artifact.result,
                        rung: artifact.rung,
                    });
                    // Promote into the in-memory memo: later requests hit
                    // without touching the store again.
                    lead.fulfill(Arc::clone(&plan));
                    return Ok(Served {
                        plan,
                        memo_hit: true,
                        repaired: false,
                        degraded: false,
                        service_s: t.elapsed().as_secs_f64(),
                    });
                }
                self.counters
                    .persist_rejected
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        let checkout = self
            .contexts
            .lock()
            .unwrap()
            .checkout(instance.chip_hash, instance.instance_hash);
        let parts = match checkout {
            ContextCheckout::Warm(parts) | ContextCheckout::PoolOnly(parts) => parts,
            ContextCheckout::Cold => ContextParts::default(),
        };
        // Map the remaining per-request budget onto the ladder's pipeline
        // budget (never loosening the config's own bound).
        let remaining = req.deadline_at.map(|d| d.saturating_sub(self.clock.now()));
        let configured = self.cfg.planner.pipeline_budget;
        let tightened = match (remaining, configured) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(r), Some(b)) => r < b,
        };
        let solve_cfg = PdwConfig {
            pipeline_budget: match (remaining, configured) {
                (None, b) => b,
                (Some(r), None) => Some(r),
                (Some(r), Some(b)) => Some(r.min(b)),
            },
            ..self.cfg.planner.clone()
        };
        self.counters.solves.fetch_add(1, Ordering::Relaxed);
        let mut ctx = PlanContext::from_parts(&instance.bench, &instance.synthesis, parts);
        let outcome = plan_resilient_ctx(&mut ctx, &solve_cfg);
        self.contexts.lock().unwrap().store(
            instance.chip_hash,
            instance.instance_hash,
            ctx.into_parts(),
        );
        match outcome.served {
            Some(result) => {
                let deadline_marked = result.pipeline.deadline_expired
                    || outcome
                        .attempts
                        .iter()
                        .any(|a| matches!(a.rejection, Some(RungRejection::DeadlineExpired)));
                // Only this request's own deadline makes a plan
                // "degraded"; a budget baked into the server config is
                // part of the memo key and memoizes normally.
                let degraded = tightened && deadline_marked;
                let rung = outcome.rung.expect("served implies a rung");
                // Certify-and-persist mirrors memoization: degraded plans
                // are served to their requester but never durable.
                let artifact = match (&self.store, degraded) {
                    (Some(_), false) => Some(PlanArtifact::certified(
                        instance.instance_hash,
                        self.config_fp,
                        rung,
                        &instance.bench,
                        &instance.synthesis,
                        result.clone(),
                    )),
                    _ => None,
                };
                let plan = Arc::new(ServedPlan { result, rung });
                if degraded {
                    lead.abandon();
                } else {
                    lead.fulfill(Arc::clone(&plan));
                    if let (Some(store), Some(artifact)) = (&self.store, artifact) {
                        store.put(key, &artifact);
                    }
                }
                Ok(Served {
                    plan,
                    memo_hit: false,
                    repaired: false,
                    degraded,
                    service_s: t.elapsed().as_secs_f64(),
                })
            }
            None => {
                lead.abandon();
                self.counters.unservable.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Unservable(rejection_summary(&outcome)))
            }
        }
    }

    fn repair(&self, req: &QueuedRequest, instance: &Arc<Instance>, delta: &PlanDelta) -> Response {
        let t = Instant::now();
        let key = memo_key(instance.instance_hash, self.config_fp);
        let session = {
            let mut sessions = self.sessions.lock().unwrap();
            Arc::clone(sessions.entry(key).or_insert_with(|| {
                Arc::new(Mutex::new(RepairSession::new(
                    instance.bench.clone(),
                    instance.synthesis.clone(),
                    self.cfg.planner.clone(),
                )))
            }))
        };
        let mut s = session.lock().unwrap();
        if s.last().is_none() {
            // First touch of this session: pay the initial plan so the
            // repair has a prior to freeze against.
            self.counters.solves.fetch_add(1, Ordering::Relaxed);
            let initial = s.plan();
            if !initial.is_served() {
                self.counters.unservable.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Unservable(rejection_summary(&initial)));
            }
        }
        self.counters.repairs.fetch_add(1, Ordering::Relaxed);
        let outcome = s.repair(delta);
        drop(s);
        let _ = req; // deadlines are only enforced at dequeue for repairs
        match outcome.served {
            Some(result) => Ok(Served {
                plan: Arc::new(ServedPlan {
                    result,
                    rung: outcome.rung.expect("served implies a rung"),
                }),
                memo_hit: false,
                repaired: true,
                degraded: false,
                service_s: t.elapsed().as_secs_f64(),
            }),
            None => {
                let malformed = outcome.attempts.len() == 1
                    && matches!(
                        &outcome.attempts[0].rejection,
                        Some(RungRejection::PlannerError(msg)) if msg.starts_with("rejected delta")
                    );
                let summary = rejection_summary(&outcome);
                if malformed {
                    self.counters
                        .rejected_deltas
                        .fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::RejectedDelta(summary))
                } else {
                    self.counters.unservable.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Unservable(summary))
                }
            }
        }
    }
}

fn rejection_summary(outcome: &PlanOutcome) -> String {
    outcome
        .attempts
        .iter()
        .map(|a| {
            let why = a
                .rejection
                .as_ref()
                .map(|r| r.to_string())
                .unwrap_or_else(|| "served".to_string());
            format!("{}: {why}", a.rung)
        })
        .collect::<Vec<_>>()
        .join("; ")
}
