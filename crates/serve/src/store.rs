//! The persistent memo store: verified plan artifacts that survive a
//! server restart.
//!
//! The in-memory [`MemoCache`](crate::cache::MemoCache) dies with the
//! process; a [`MemoStore`] is the durable tier underneath it. The
//! file-backed implementation ([`FileMemoStore`]) is an append-only log of
//! [`MemoRecord`](pathdriver_wash::codec::FrameType::MemoRecord) frames —
//! each one `{ key, artifact }` in the canonical codec, so every record
//! carries the codec magic, [`SCHEMA_VERSION`], and an FNV digest trailer.
//! On open the log is replayed last-wins and **compacted**: superseded
//! writes, version-skewed records, and a torn tail (a crash mid-append) are
//! all dropped on the floor and the file is atomically rewritten without
//! them. A stale-version entry is therefore *evicted, never served* — it
//! cannot even be loaded.
//!
//! Trust model: the store holds [`PlanArtifact`]s, not bare plans. The
//! server re-verifies an artifact's certificate against the requester's
//! concrete instance before serving it ([`PlanArtifact::verify`]); a
//! persisted artifact that no longer reproduces its digests (disk
//! corruption the frame digest missed, a chip that changed under the same
//! key, a forged file) is rejected and replaced by a fresh solve.
//!
//! [`SCHEMA_VERSION`]: pathdriver_wash::SCHEMA_VERSION

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pathdriver_wash::codec::{self, CodecError, FrameType};
use pathdriver_wash::PlanArtifact;
use serde::{Deserialize, Serialize};

/// One persisted memo entry: the versioned memo key and its artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MemoRecord {
    key: u64,
    artifact: PlanArtifact,
}

/// A durable map from memo key to verified [`PlanArtifact`].
///
/// Implementations must be safe to call from several server workers at
/// once. `get` returns whatever was last `put` for the key — the *server*
/// owns certificate re-verification; the store only owns integrity of the
/// bytes (which the codec frames enforce).
pub trait MemoStore: Send + Sync {
    /// The stored artifact for `key`, if any.
    fn get(&self, key: u64) -> Option<PlanArtifact>;

    /// Stores (or overwrites) `key`'s artifact.
    fn put(&self, key: u64, artifact: &PlanArtifact);

    /// Number of live entries.
    fn len(&self) -> usize;

    /// `true` when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A purely in-memory [`MemoStore`] — the trait's reference
/// implementation, useful for tests and for serving without persistence.
#[derive(Default)]
pub struct InMemoryMemoStore {
    entries: Mutex<HashMap<u64, PlanArtifact>>,
}

impl InMemoryMemoStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoStore for InMemoryMemoStore {
    fn get(&self, key: u64) -> Option<PlanArtifact> {
        self.entries.lock().unwrap().get(&key).cloned()
    }

    fn put(&self, key: u64, artifact: &PlanArtifact) {
        self.entries.lock().unwrap().insert(key, artifact.clone());
    }

    fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }
}

/// What [`FileMemoStore::open`] found in an existing log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreLoadReport {
    /// Live entries loaded (after last-wins replay).
    pub loaded: usize,
    /// Records dropped because they were written by a different
    /// [`SCHEMA_VERSION`](pathdriver_wash::SCHEMA_VERSION).
    pub stale_version: usize,
    /// Earlier writes superseded by a later record for the same key.
    pub superseded: usize,
    /// `true` when the log ended in a torn or corrupt record (crash
    /// mid-append, flipped bytes); everything from the first bad frame on
    /// was dropped.
    pub corrupt_tail: bool,
}

impl StoreLoadReport {
    /// `true` when compaction rewrote the file (anything was dropped).
    pub fn compacted(&self) -> bool {
        self.stale_version > 0 || self.superseded > 0 || self.corrupt_tail
    }
}

struct FileState {
    entries: HashMap<u64, PlanArtifact>,
    writer: BufWriter<File>,
}

/// An append-only, self-compacting file-backed [`MemoStore`] (see the
/// [module docs](self)).
pub struct FileMemoStore {
    path: PathBuf,
    state: Mutex<FileState>,
}

impl FileMemoStore {
    /// Opens (or creates) the store at `path`, replaying and compacting
    /// any existing log. Returns the store and a report of what the replay
    /// found.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<(Self, StoreLoadReport)> {
        let path = path.into();
        let mut entries: HashMap<u64, PlanArtifact> = HashMap::new();
        let mut report = StoreLoadReport::default();
        if path.exists() {
            let mut reader = BufReader::new(File::open(&path)?);
            loop {
                match codec::read_frame(&mut reader) {
                    Ok(None) => break,
                    Ok(Some(frame)) => {
                        match codec::decode_frame::<MemoRecord>(FrameType::MemoRecord, &frame) {
                            Ok(record) => {
                                if entries.insert(record.key, record.artifact).is_some() {
                                    report.superseded += 1;
                                }
                            }
                            Err(CodecError::VersionSkew { .. }) => report.stale_version += 1,
                            // Any other defect inside a structurally whole
                            // frame (digest mismatch, wrong type, malformed
                            // payload) means the log can no longer be
                            // trusted past this point.
                            Err(_) => {
                                report.corrupt_tail = true;
                                break;
                            }
                        }
                    }
                    // A torn tail (crash mid-append) or unreadable bytes:
                    // keep what replayed cleanly, drop the rest.
                    Err(_) => {
                        report.corrupt_tail = true;
                        break;
                    }
                }
            }
        }
        report.loaded = entries.len();
        if report.compacted() {
            // Atomic rewrite: the log on disk shrinks to exactly the live
            // entries, in sorted key order for determinism.
            let tmp = path.with_extension("tmp");
            {
                let mut w = BufWriter::new(File::create(&tmp)?);
                let mut keys: Vec<u64> = entries.keys().copied().collect();
                keys.sort_unstable();
                for key in keys {
                    let record = MemoRecord {
                        key,
                        artifact: entries[&key].clone(),
                    };
                    let frame = codec::encode_frame(FrameType::MemoRecord, &record);
                    w.write_all(&frame)?;
                }
                w.flush()?;
            }
            std::fs::rename(&tmp, &path)?;
        }
        let writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        Ok((
            FileMemoStore {
                path,
                state: Mutex::new(FileState { entries, writer }),
            },
            report,
        ))
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl MemoStore for FileMemoStore {
    fn get(&self, key: u64) -> Option<PlanArtifact> {
        self.state.lock().unwrap().entries.get(&key).cloned()
    }

    fn put(&self, key: u64, artifact: &PlanArtifact) {
        let mut state = self.state.lock().unwrap();
        let record = MemoRecord {
            key,
            artifact: artifact.clone(),
        };
        let frame = codec::encode_frame(FrameType::MemoRecord, &record);
        // Best-effort durability: an append failure leaves the in-memory
        // entry serving this process; the next clean open just sees fewer
        // records.
        let _ = state.writer.write_all(&frame);
        let _ = state.writer.flush();
        state.entries.insert(key, artifact.clone());
    }

    fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathdriver_wash::codec::Fnv64;
    use pathdriver_wash::{config_fingerprint, instance_hash, memo_key, plan_resilient, PdwConfig};
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn temp_path(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("pdw-memo-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn demo_artifact() -> (PlanArtifact, u64) {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let config = PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        };
        let outcome = plan_resilient(&bench, &s, &config);
        let ih = instance_hash(&bench, &s);
        let fp = config_fingerprint(&config);
        let artifact = PlanArtifact::certified(
            ih,
            fp,
            outcome.rung.unwrap(),
            &bench,
            &s,
            outcome.served.unwrap(),
        );
        (artifact, memo_key(ih, fp))
    }

    #[test]
    fn file_store_survives_a_restart() {
        let path = temp_path("restart");
        let (artifact, key) = demo_artifact();
        {
            let (store, report) = FileMemoStore::open(&path).unwrap();
            assert_eq!(report, StoreLoadReport::default());
            assert!(store.is_empty());
            store.put(key, &artifact);
            assert_eq!(store.len(), 1);
        }
        let (store, report) = FileMemoStore::open(&path).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(!report.compacted());
        let back = store.get(key).expect("persisted entry");
        assert_eq!(back.result.schedule, artifact.result.schedule);
        assert_eq!(back.certificate, artifact.certificate);
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        back.verify(&bench, &s).expect("reloaded artifact verifies");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn last_wins_and_compaction_shrinks_the_log() {
        let path = temp_path("compact");
        let (artifact, key) = demo_artifact();
        {
            let (store, _) = FileMemoStore::open(&path).unwrap();
            store.put(key, &artifact);
            store.put(key, &artifact); // superseded duplicate
            store.put(key ^ 1, &artifact);
        }
        let grown = std::fs::metadata(&path).unwrap().len();
        let (store, report) = FileMemoStore::open(&path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.superseded, 1);
        assert!(report.compacted());
        assert_eq!(store.len(), 2);
        drop(store);
        let compacted = std::fs::metadata(&path).unwrap().len();
        assert!(compacted < grown, "{compacted} !< {grown}");
        // A third open finds a clean log: nothing left to compact.
        let (_, report) = FileMemoStore::open(&path).unwrap();
        assert!(!report.compacted());
        let _ = std::fs::remove_file(&path);
    }

    /// Re-frames `frame` as if written by codec version `version`,
    /// recomputing the digest trailer so only the version check can
    /// reject it.
    fn reversion_frame(frame: &[u8], version: u8) -> Vec<u8> {
        let mut out = frame[..frame.len() - 8].to_vec();
        out[4] = version;
        let mut h = Fnv64::new();
        h.write(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    #[test]
    fn stale_version_records_are_evicted_not_served() {
        let path = temp_path("skew");
        let (artifact, key) = demo_artifact();
        {
            let (store, _) = FileMemoStore::open(&path).unwrap();
            store.put(key, &artifact);
        }
        // Rewrite the lone record as a version-skewed one.
        let bytes = std::fs::read(&path).unwrap();
        let skewed = reversion_frame(&bytes, pathdriver_wash::SCHEMA_VERSION + 1);
        std::fs::write(&path, &skewed).unwrap();
        let (store, report) = FileMemoStore::open(&path).unwrap();
        assert_eq!(report.stale_version, 1);
        assert_eq!(report.loaded, 0);
        assert!(store.get(key).is_none(), "stale entry must not be served");
        drop(store);
        // Compaction dropped it from disk too.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_clean_prefix() {
        let path = temp_path("torn");
        let (artifact, key) = demo_artifact();
        {
            let (store, _) = FileMemoStore::open(&path).unwrap();
            store.put(key, &artifact);
        }
        let whole = std::fs::metadata(&path).unwrap().len();
        // Append a second record, then tear it mid-frame.
        {
            let (store, _) = FileMemoStore::open(&path).unwrap();
            store.put(key ^ 1, &artifact);
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..whole as usize + 11]).unwrap();
        let (store, report) = FileMemoStore::open(&path).unwrap();
        assert!(report.corrupt_tail);
        assert_eq!(report.loaded, 1);
        assert!(store.get(key).is_some());
        assert!(store.get(key ^ 1).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_memory_store_round_trips() {
        let (artifact, key) = demo_artifact();
        let store = InMemoryMemoStore::new();
        assert!(store.is_empty());
        store.put(key, &artifact);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.get(key).unwrap().result.schedule,
            artifact.result.schedule
        );
        assert!(store.get(key ^ 1).is_none());
    }
}
