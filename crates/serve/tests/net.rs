//! Integration tests of the socket transport: TCP and Unix round trips
//! bit-identical to in-process solves, typed version skew and frame-cap
//! refusals, deadline expiry in transit, graceful drain under load with
//! post-drain address reuse, and the chaos-proxy sweep — every fault mode
//! must end in a typed outcome, never a panic, a hang, or a wrong plan.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pathdriver_wash::codec::{encode_frame, FrameType};
use pathdriver_wash::transport::{hello, recv_response, send_request};
use pathdriver_wash::{
    plan_resilient, NetAddr, NetListener, NetRequest, NetResponse, TransportError, WireError,
    SCHEMA_VERSION,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_serve::{
    run_socket_load, ChaosMode, ChaosProxy, ChaosSpec, ClientConfig, ClientError, NetConfig,
    PlanClient, PlanServer, ServeConfig, SocketJob, SocketServer,
};
use pdw_synth::{synthesize, Synthesis};

/// A pool of `n` instances on distinct chips (pristine demo + faulted
/// variants), as plain pairs for the wire.
fn wire_pool(n: usize) -> Vec<(Benchmark, Synthesis)> {
    let bench = benchmarks::demo();
    let base = synthesize(&bench).unwrap();
    let mut pool = vec![(bench.clone(), base.clone())];
    let mut seed = 0u64;
    while pool.len() < n {
        seed += 1;
        // Some seeds fault nothing; only chips distinct from every pool
        // member count (distinct chip ⇒ distinct memo key).
        let variant = pdw_gen::inject_faults(&base, seed);
        let hash = |s: &Synthesis| pdw_serve::Instance::new(bench.clone(), s.clone()).chip_hash();
        if pool.iter().all(|(_, s)| hash(s) != hash(&variant)) {
            pool.push((bench.clone(), variant));
        }
    }
    pool
}

/// The planner config every networked client must send: the listening
/// server's own ([`ServeConfig::default`]'s) — anything else is refused.
fn wire_config() -> pathdriver_wash::PdwConfig {
    ServeConfig::default().planner
}

fn start_server(listener: NetListener, net: NetConfig) -> (Arc<PlanServer>, SocketServer) {
    let plan = Arc::new(PlanServer::start(ServeConfig::default()));
    let sock = SocketServer::start(Arc::clone(&plan), listener, net);
    (plan, sock)
}

fn tcp_server() -> (Arc<PlanServer>, SocketServer) {
    let listener = NetListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap()).unwrap();
    start_server(listener, NetConfig::default())
}

/// A fast-failing client config for fault tests: short timeouts, short
/// backoff, so a chaos sweep finishes in seconds instead of minutes.
fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(30),
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        ..ClientConfig::default()
    }
}

#[test]
fn tcp_and_unix_roundtrips_are_bit_identical_to_in_process() {
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let reference = plan_resilient(&bench, &synthesis, &wire_config())
        .served
        .expect("demo instance solves");

    let unix_path = std::env::temp_dir().join(format!("pdw-net-rt-{}.sock", std::process::id()));
    let listeners = [
        NetListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap()).unwrap(),
        NetListener::bind(&NetAddr::Unix(unix_path)).unwrap(),
    ];
    for listener in listeners {
        let (plan, sock) = start_server(listener, NetConfig::default());
        let addr = sock.local_addr();
        let mut client = PlanClient::new(addr.clone(), ClientConfig::default());
        let first = client
            .solve(&bench, &synthesis, &wire_config(), None)
            .unwrap_or_else(|e| panic!("{addr}: remote solve failed: {e}"));
        // The client already re-verified the certificate (verify: true);
        // the schedule must be byte-for-byte the in-process plan.
        assert_eq!(
            first.artifact.result.schedule, reference.schedule,
            "{addr}: remote plan differs from in-process"
        );
        assert_eq!(first.artifact.result.metrics, reference.metrics);
        assert!(!first.memo_hit, "{addr}: first solve is cold");
        assert_eq!(first.retries, 0);
        assert!(client.rtt().is_some(), "{addr}: handshake measured an RTT");

        let second = client
            .solve(&bench, &synthesis, &wire_config(), None)
            .expect("second solve");
        assert!(second.memo_hit, "{addr}: identical instance hits the memo");
        assert_eq!(second.artifact.result.schedule, reference.schedule);

        let ping = client.ping().expect("heartbeat answers");
        assert!(ping < Duration::from_secs(1));

        assert_eq!(plan.stats().solves, 1, "{addr}: one ladder run for both");
        let ns = sock.stats();
        assert_eq!(ns.solves, 2);
        assert_eq!(ns.handshake_failures, 0);
        sock.drain();
        plan.shutdown();
    }
}

#[test]
fn version_skew_and_config_mismatch_are_typed_refusals() {
    let (plan, sock) = tcp_server();
    let addr = sock.local_addr();

    // Field-level version skew: a well-framed Hello announcing the wrong
    // protocol version (byte-level skew is caught by the frame envelope).
    let mut raw = addr.connect(Duration::from_secs(2)).unwrap();
    send_request(
        &mut raw,
        &NetRequest::Hello {
            codec_version: SCHEMA_VERSION + 1,
        },
        Duration::from_secs(2),
    )
    .unwrap();
    match recv_response(&mut raw, 1 << 20, Duration::from_secs(2)) {
        Ok(Some(NetResponse::Error {
            error: WireError::BadRequest(msg),
            ..
        })) => {
            assert!(msg.contains("version mismatch"), "got: {msg}");
        }
        other => panic!("expected a typed version refusal, got {other:?}"),
    }

    // Config-fingerprint mismatch: a well-versioned Solve asking for a
    // different planner config than the one the server runs.
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let mut client = PlanClient::new(addr, ClientConfig::default());
    let foreign = pathdriver_wash::PdwConfig {
        candidates: wire_config().candidates + 1,
        ..wire_config()
    };
    match client.solve(&bench, &synthesis, &foreign, None) {
        Err(ClientError::Serve(WireError::BadRequest(msg))) => {
            assert!(msg.contains("fingerprint"), "got: {msg}");
        }
        other => panic!("expected a typed config refusal, got {other:?}"),
    }
    assert!(sock.stats().handshake_failures >= 1);
    assert!(sock.stats().bad_requests >= 1);
    sock.drain();
    plan.shutdown();
}

#[test]
fn oversized_frames_are_refused_before_allocation() {
    let listener = NetListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap()).unwrap();
    let (plan, sock) = start_server(
        listener,
        NetConfig {
            // Big enough for the handshake, far too small for a Solve.
            max_frame_len: 2048,
            ..NetConfig::default()
        },
    );
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let mut client = PlanClient::new(sock.local_addr(), ClientConfig::default());
    match client.solve(&bench, &synthesis, &wire_config(), None) {
        Err(ClientError::Serve(WireError::BadRequest(msg))) => {
            assert!(
                msg.contains("frame"),
                "refusal names the frame guard: {msg}"
            );
        }
        other => panic!("expected a typed frame-cap refusal, got {other:?}"),
    }
    sock.drain();
    plan.shutdown();
}

#[test]
fn deadline_smaller_than_transit_expires_typed_without_a_solve() {
    let (plan, sock) = tcp_server();
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let mut client = PlanClient::new(sock.local_addr(), ClientConfig::default());
    // 1ns budget: after subtracting the transit estimate the server sees
    // zero — the deadline expired in transit and must come back typed.
    match client.solve(
        &bench,
        &synthesis,
        &wire_config(),
        Some(Duration::from_nanos(1)),
    ) {
        Err(ClientError::Serve(WireError::DeadlineExpired { .. })) => {}
        other => panic!("expected a typed in-transit expiry, got {other:?}"),
    }
    assert_eq!(plan.stats().solves, 0, "no ladder run was wasted on it");
    sock.drain();
    plan.shutdown();
}

/// The chaos sweep: every fault mode against the first proxied connection,
/// with retries on. Every request must end typed — served (verified,
/// bit-identical) or a typed error — and the server must do exactly one
/// ladder run per unique instance regardless of retries (retry safety via
/// the memo key).
#[test]
fn chaos_sweep_has_zero_untyped_errors_and_no_duplicate_solves() {
    let pool = wire_pool(2);
    let jobs: Vec<SocketJob> = (0..6)
        .map(|i| SocketJob {
            at_us: 0,
            pool_index: i % pool.len(),
            budget: None,
        })
        .collect();
    for spec in ChaosSpec::all_modes(1) {
        let (plan, sock) = tcp_server();
        let mut proxy = ChaosProxy::start(sock.local_addr(), Some(spec));
        let report = run_socket_load(
            &proxy.local_addr(),
            &pool,
            &wire_config(),
            &jobs,
            2,
            fast_client(),
            false,
        );
        // Typed everywhere: served + typed errors account for every job.
        assert_eq!(
            report.served + report.transport_errors + report.serve_errors,
            report.requests,
            "{spec}: some request ended untyped"
        );
        for line in &report.errors {
            assert!(
                line.starts_with("transport: ") || line.starts_with("serve: "),
                "{spec}: untyped error line: {line}"
            );
        }
        // With retries on, a single faulted connection never costs a plan.
        assert_eq!(
            report.served, report.requests,
            "{spec}: retries absorb the fault; errors: {:?}",
            report.errors
        );
        if !matches!(spec.mode, ChaosMode::Delay(_)) {
            assert!(
                report.retries >= 1,
                "{spec}: the faulted connection forced a retry"
            );
        }
        // Retry safety: solves == unique memo keys, retries included.
        assert_eq!(
            plan.stats().solves,
            pool.len() as u64,
            "{spec}: duplicate ladder runs under retry"
        );
        assert!(proxy.accepted() >= 1, "{spec}: traffic went via the proxy");
        proxy.stop();
        sock.shutdown();
        plan.shutdown();
    }
}

/// The 1k-request open-loop soak through a chaos proxy (first connection
/// torn mid-handshake) at client counts {1, 8}: all served, all verified,
/// solve count still equals the unique-instance count.
#[test]
fn socket_soak_1k_requests_through_the_chaos_proxy() {
    let pool = wire_pool(4);
    let jobs: Vec<SocketJob> = (0..1000)
        .map(|i| SocketJob {
            at_us: (i as u64) * 200,
            pool_index: (i * 7 + 3) % pool.len(),
            budget: None,
        })
        .collect();
    for clients in [1usize, 8] {
        let (plan, sock) = tcp_server();
        let mut proxy = ChaosProxy::start(
            sock.local_addr(),
            Some(ChaosSpec {
                mode: ChaosMode::Disconnect,
                nth: 1,
            }),
        );
        let report = run_socket_load(
            &proxy.local_addr(),
            &pool,
            &wire_config(),
            &jobs,
            clients,
            fast_client(),
            true,
        );
        assert_eq!(
            report.served, 1000,
            "clients={clients}: all soak requests serve; errors: {:?}",
            report.errors
        );
        assert_eq!(report.transport_errors + report.serve_errors, 0);
        assert!(
            report.memo_hits >= 1000 - pool.len(),
            "clients={clients}: everything after the cold solves hits the memo"
        );
        assert!(
            report.retries >= 1,
            "clients={clients}: the torn first connection was retried"
        );
        assert_eq!(
            plan.stats().solves,
            pool.len() as u64,
            "clients={clients}: one ladder run per unique instance"
        );
        assert!(report.p99_ms >= report.p50_ms);
        proxy.stop();
        sock.shutdown();
        plan.shutdown();
    }
}

/// Graceful drain under load: in-flight solves finish, late arrivals are
/// answered `ShuttingDown` (surfaced as a non-retryable transport error),
/// and after the drain the same Unix address rebinds — where a batch
/// client mid-stream reconnects and keeps going against the new server.
#[test]
fn drain_under_load_finishes_in_flight_then_frees_the_address() {
    let unix_path = std::env::temp_dir().join(format!("pdw-net-drain-{}.sock", std::process::id()));
    let addr = NetAddr::Unix(unix_path.clone());
    let listener = NetListener::bind(&addr).unwrap();
    let (plan, sock) = start_server(listener, NetConfig::default());
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let reference = plan_resilient(&bench, &synthesis, &wire_config())
        .served
        .expect("solves");

    // Hold the queue so a submitted solve stays in flight across the drain.
    plan.pause();
    let in_flight_client = {
        let addr = addr.clone();
        let (bench, synthesis) = (bench.clone(), synthesis.clone());
        std::thread::spawn(move || {
            let mut client = PlanClient::new(addr, ClientConfig::default());
            client.solve(&bench, &synthesis, &wire_config(), None)
        })
    };
    while sock.in_flight() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Two more connections open *before* the drain, so they outlive the
    // accept loop: one to observe the post-drain refusal, one to carry a
    // stale connection into the post-rebind reconnect check.
    let mut admin = PlanClient::new(addr.clone(), ClientConfig::default());
    admin.ping().expect("admin connection is up pre-drain");
    let mut batch = PlanClient::new(addr.clone(), ClientConfig::default());
    batch.ping().expect("batch connection is up pre-drain");

    // Drain arrives over the wire while that solve is still queued.
    let pending = admin.drain().expect("drain acknowledged");
    assert_eq!(pending, 1, "the held solve is reported in flight");
    assert!(sock.is_draining());

    // A late solve on the surviving connection is refused typed — and the
    // client does not retry it (draining is not a retryable fault).
    match admin.solve(&bench, &synthesis, &wire_config(), None) {
        Err(ClientError::Transport(TransportError::ServerDraining)) => {}
        other => panic!("expected a typed draining refusal, got {other:?}"),
    }
    assert_eq!(admin.retries_total(), 0, "draining is not retryable");
    assert!(sock.stats().drain_refused >= 1);

    // Release the queue: the in-flight solve completes and is served.
    plan.resume();
    let served = in_flight_client
        .join()
        .expect("client thread")
        .expect("in-flight solve survives the drain");
    assert_eq!(served.artifact.result.schedule, reference.schedule);
    sock.drain();
    assert_eq!(sock.in_flight(), 0);

    // The drained listener released the Unix path: the same address
    // rebinds, and a client that served against the old server reconnects
    // mid-batch against the new one after its dead connection surfaces as
    // a retryable fault.
    let listener = NetListener::bind(&addr).expect("post-drain rebind of the same path");
    let (plan2, sock2) = start_server(listener, NetConfig::default());
    // `batch` still holds the connection the old server tore down: its
    // next solve surfaces that as a typed, retryable fault and reconnects.
    let replan = batch
        .solve(&bench, &synthesis, &wire_config(), None)
        .expect("reconnect-mid-batch against the rebound address");
    assert_eq!(replan.artifact.result.schedule, reference.schedule);
    assert!(
        batch.retries_total() >= 1,
        "the dead connection cost a typed, retried fault"
    );
    sock2.drain();
    plan2.shutdown();
    plan.shutdown();
}

/// A frame whose delivery spans several read ticks (a slow link mid-
/// payload) must be assembled across ticks, not torn: the server's
/// 50ms poll may elapse many times inside one frame, and each quiet
/// tick must resume the partial frame instead of discarding it and
/// parsing the remaining bytes as a fresh header.
#[test]
fn slow_trickle_mid_frame_does_not_desync_the_stream() {
    let (plan, sock) = tcp_server(); // read_tick = 50ms
    let mut raw = sock.local_addr().connect(Duration::from_secs(2)).unwrap();
    send_request(&mut raw, &hello(), Duration::from_secs(2)).unwrap();
    match recv_response(&mut raw, 1 << 20, Duration::from_secs(2)) {
        Ok(Some(NetResponse::HelloAck { .. })) => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }

    // Trickle a Ping frame in three pieces — split mid-header and
    // mid-payload — with gaps several read ticks wide.
    let frame = encode_frame(FrameType::NetRequest, &NetRequest::Ping { nonce: 0xf00d });
    assert!(frame.len() > 14, "frame long enough to split three ways");
    for piece in [&frame[..7], &frame[7..14], &frame[14..]] {
        raw.write_all(piece).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    match recv_response(&mut raw, 1 << 20, Duration::from_secs(2)) {
        Ok(Some(NetResponse::Pong { nonce })) => assert_eq!(nonce, 0xf00d),
        other => panic!("trickled frame was torn: {other:?}"),
    }

    // The stream is still in sync: a whole frame right after round-trips.
    send_request(
        &mut raw,
        &NetRequest::Ping { nonce: 0xbeef },
        Duration::from_secs(2),
    )
    .unwrap();
    match recv_response(&mut raw, 1 << 20, Duration::from_secs(2)) {
        Ok(Some(NetResponse::Pong { nonce })) => assert_eq!(nonce, 0xbeef),
        other => panic!("stream desynced after the trickled frame: {other:?}"),
    }
    assert_eq!(sock.stats().pings, 2);
    sock.drain();
    plan.shutdown();
}

/// Envelope-level version skew (the frame's version byte, not the Hello
/// field) must be answered with a typed error frame before the server
/// closes — a silent close reads as a retryable I/O fault and makes a
/// skewed client burn its whole retry budget instead of failing fast.
#[test]
fn envelope_version_skew_gets_a_typed_handshake_reply() {
    let (plan, sock) = tcp_server();
    let mut raw = sock.local_addr().connect(Duration::from_secs(2)).unwrap();
    let mut frame = encode_frame(FrameType::NetRequest, &hello());
    frame[4] = SCHEMA_VERSION.wrapping_add(1); // version byte in the envelope
    raw.write_all(&frame).unwrap();
    raw.flush().unwrap();
    match recv_response(&mut raw, 1 << 20, Duration::from_secs(2)) {
        Ok(Some(NetResponse::Error {
            error: WireError::BadRequest(msg),
            ..
        })) => assert!(msg.contains("skew"), "refusal names the skew: {msg}"),
        other => panic!("expected a typed skew refusal, got {other:?}"),
    }
    assert!(sock.stats().handshake_failures >= 1);
    sock.drain();
    plan.shutdown();
}

/// A solve that outlives the idle timeout must not get its connection
/// evicted the moment the response is written: the idle clock restarts
/// when the answer goes out, so a sequential slow workload keeps its
/// connection between requests.
#[test]
fn slow_solve_completion_restarts_the_idle_clock() {
    let listener = NetListener::bind(&NetAddr::parse("127.0.0.1:0").unwrap()).unwrap();
    let (plan, sock) = start_server(
        listener,
        NetConfig {
            idle_timeout: Duration::from_millis(600),
            read_tick: Duration::from_millis(20),
            ..NetConfig::default()
        },
    );
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    // Hold the queue so the solve reliably outlives the idle timeout.
    plan.pause();
    let addr = sock.local_addr();
    let solver = {
        let (bench, synthesis) = (bench.clone(), synthesis.clone());
        std::thread::spawn(move || {
            let mut client = PlanClient::new(addr, ClientConfig::default());
            client
                .solve(&bench, &synthesis, &wire_config(), None)
                .expect("held solve serves once released");
            // Well inside the *restarted* idle window, far outside the
            // one measured from the request's arrival.
            std::thread::sleep(Duration::from_millis(300));
            client.ping().expect("connection survives a slow solve")
        })
    };
    while sock.in_flight() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(900)); // > idle_timeout
    plan.resume();
    solver.join().expect("solver thread");
    assert_eq!(sock.stats().idle_evicted, 0, "no spurious eviction");
    sock.drain();
    plan.shutdown();
}

/// The budget passed to [`PlanClient::solve`] is a per-call deadline:
/// retries and backoff sleeps spend it, and once it is gone the call
/// fails locally with a typed expiry instead of running the whole retry
/// ladder against a dead server.
#[test]
fn retry_loop_honors_the_per_call_deadline() {
    // A dead address: bind a port for its number, then free it.
    let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = NetAddr::Tcp(format!("127.0.0.1:{}", dead.local_addr().unwrap().port()));
    drop(dead);
    let (bench, synthesis) = wire_pool(1).swap_remove(0);
    let mut client = PlanClient::new(
        addr,
        ClientConfig {
            retries: 10,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(2),
            ..ClientConfig::default()
        },
    );
    let t = Instant::now();
    match client.solve(
        &bench,
        &synthesis,
        &wire_config(),
        Some(Duration::from_millis(250)),
    ) {
        Err(ClientError::Serve(WireError::DeadlineExpired { .. })) => {}
        other => panic!("expected a local deadline expiry, got {other:?}"),
    }
    // Ten 100ms-doubling backoffs would take many seconds; the deadline
    // bounds the call near its 250ms budget.
    let elapsed = t.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "call returned near its deadline, not after the retry ladder: {elapsed:?}"
    );
    assert!(client.retries_total() >= 1, "the dead server was retried");
}

/// Finished connection threads are reaped while the server runs — a
/// long-running listener must not hold one JoinHandle per connection it
/// ever accepted until shutdown.
#[test]
fn finished_connection_threads_are_reaped() {
    let (plan, sock) = tcp_server();
    let addr = sock.local_addr();
    for _ in 0..8 {
        let mut client = PlanClient::new(addr.clone(), ClientConfig::default());
        client.ping().expect("connects");
        client.disconnect();
    }
    // The accept loop reaps finished handles on every pass; give the
    // closed connections a moment to unwind.
    let t = Instant::now();
    while (sock.stats().active > 0 || sock.conn_thread_backlog() > 0)
        && t.elapsed() < Duration::from_secs(5)
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(sock.stats().accepted, 8);
    assert_eq!(sock.stats().active, 0);
    assert_eq!(
        sock.conn_thread_backlog(),
        0,
        "finished handles reaped before shutdown"
    );
    sock.drain();
    plan.shutdown();
}
