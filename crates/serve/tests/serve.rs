//! Deterministic integration tests of the plan server: stampede
//! single-flight, deadline expiry mid-batch, admission-control shedding,
//! LRU churn bit-identity, and the 1k-request chaos soak.
//!
//! Every test runs at worker counts {1, 8} and drives time through the
//! injectable [`ManualClock`] (or ignores time entirely), so outcomes do
//! not depend on scheduling luck.

use std::sync::Arc;
use std::time::Duration;

use pathdriver_wash::{plan_resilient, PlanDelta, RepairSession};
use pdw_assay::benchmarks;
use pdw_gen::{request_stream, StreamOptions};
use pdw_serve::{
    materialize, run_open_loop, HookPoint, Instance, ManualClock, PlanServer, Rejected,
    ServeConfig, ServeError, ServeRequest, Submission,
};
use pdw_synth::synthesize;

fn demo_instance() -> Arc<Instance> {
    let bench = benchmarks::demo();
    let synthesis = synthesize(&bench).unwrap();
    Arc::new(Instance::new(bench, synthesis))
}

/// A pool of `n` instances on distinct chips: the pristine demo chip plus
/// fault-injected variants.
fn faulted_pool(n: usize) -> Vec<Arc<Instance>> {
    let bench = benchmarks::demo();
    let base = synthesize(&bench).unwrap();
    let mut pool = vec![Arc::new(Instance::new(bench.clone(), base.clone()))];
    let mut seed = 0u64;
    while pool.len() < n {
        seed += 1;
        let variant = pdw_gen::inject_faults(&base, seed);
        let instance = Instance::new(bench.clone(), variant);
        if pool.iter().all(|p| p.chip_hash() != instance.chip_hash()) {
            pool.push(Arc::new(instance));
        }
    }
    pool
}

fn solve(instance: &Arc<Instance>) -> ServeRequest {
    ServeRequest::Solve {
        instance: Arc::clone(instance),
    }
}

/// Oracle re-verification: the served schedule must be executable and
/// contamination-free on the instance's (possibly faulted) chip.
fn assert_verified(
    bench: &benchmarks::Benchmark,
    synthesis: &pdw_synth::Synthesis,
    plan: &pathdriver_wash::WashResult,
) {
    pdw_sim::validate(&synthesis.chip, &bench.graph, &plan.schedule)
        .expect("served plan validates");
    let oracle = pdw_sim::propagate(&synthesis.chip, &bench.graph, &plan.schedule);
    assert!(oracle.is_clean(), "served plan is oracle-clean");
}

#[test]
fn stampede_resolves_to_one_solve() {
    let instance = demo_instance();
    let cfg = ServeConfig::default();
    let reference = plan_resilient(instance.bench(), instance.synthesis(), &cfg.planner)
        .served
        .expect("demo instance solves");
    for workers in [1, 8] {
        let server = PlanServer::start(ServeConfig {
            workers,
            ..cfg.clone()
        });
        server.pause();
        let tickets: Vec<_> = (0..32)
            .map(|_| server.submit(solve(&instance)).expect("admitted"))
            .collect();
        server.resume();
        let mut hits = 0;
        for ticket in &tickets {
            let served = ticket.wait().expect("served");
            assert_eq!(
                served.plan.result.schedule, reference.schedule,
                "workers={workers}: every waiter gets the leader's plan"
            );
            assert!(!served.degraded && !served.repaired);
            if served.memo_hit {
                hits += 1;
            }
            assert_verified(instance.bench(), instance.synthesis(), &served.plan.result);
        }
        let stats = server.stats();
        assert_eq!(stats.solves, 1, "workers={workers}: exactly one solve");
        assert_eq!(stats.memo_hits, hits);
        assert_eq!(hits, 31, "workers={workers}: all but the leader hit");
        assert_eq!(stats.served, 32);
        assert_eq!(stats.worker_panics, 0);
    }
}

#[test]
fn deadline_expiry_mid_batch_does_not_poison_the_batch() {
    let instance = demo_instance();
    for workers in [1, 8] {
        let clock = Arc::new(ManualClock::new());
        let server = PlanServer::start_with(
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            clock.clone(),
            None,
        );
        server.pause();
        // Same batch: a request whose budget will expire in queue, then a
        // healthy sibling.
        let doomed = server
            .submit_with_budget(solve(&instance), Some(Duration::from_millis(5)))
            .expect("admitted");
        let healthy = server.submit(solve(&instance)).expect("admitted");
        clock.advance(Duration::from_millis(10));
        server.resume();
        match doomed.wait() {
            Err(ServeError::DeadlineExpired { waited }) => {
                assert!(waited >= Duration::from_millis(10))
            }
            other => panic!("workers={workers}: expected DeadlineExpired, got {other:?}"),
        }
        let served = healthy.wait().expect("sibling must still serve");
        assert_verified(instance.bench(), instance.synthesis(), &served.plan.result);
        let stats = server.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.served, 1);
    }
}

#[test]
fn saturated_queue_sheds_typed_and_counted() {
    let instance = demo_instance();
    let cost = instance.cost();
    for workers in [1, 8] {
        let server = PlanServer::start(ServeConfig {
            workers,
            queue_cost_budget: 2 * cost,
            ..ServeConfig::default()
        });
        server.pause();
        let a = server.submit(solve(&instance)).expect("first admitted");
        let b = server.submit(solve(&instance)).expect("second admitted");
        match server.submit(solve(&instance)) {
            Err(Rejected::Saturated {
                queued_cost,
                cost: c,
                budget,
            }) => {
                assert_eq!(queued_cost, 2 * cost);
                assert_eq!(c, cost);
                assert_eq!(budget, 2 * cost);
            }
            Err(other) => panic!("workers={workers}: expected Saturated, got {other}"),
            Ok(_) => panic!("workers={workers}: third request must be shed"),
        }
        assert_eq!(server.queue_depth(), 2);
        assert_eq!(server.stats().shed, 1);
        server.resume();
        // The admitted requests are unaffected by the shed one.
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        assert_eq!(server.stats().served, 2);
        server.shutdown();
        assert!(matches!(
            server.submit(solve(&instance)),
            Err(Rejected::ShuttingDown)
        ));
    }
}

#[test]
fn lru_churn_never_serves_a_foreign_context() {
    // More distinct chips than LRU capacity: every solve must still be
    // bit-identical to a cold solve of its own instance.
    let pool = faulted_pool(5);
    let cfg = ServeConfig {
        context_lru: 2,
        ..ServeConfig::default()
    };
    let references: Vec<_> = pool
        .iter()
        .map(|i| plan_resilient(i.bench(), i.synthesis(), &cfg.planner).served)
        .collect();
    for workers in [1, 8] {
        let server = PlanServer::start(ServeConfig {
            workers,
            ..cfg.clone()
        });
        for (instance, reference) in pool.iter().zip(&references) {
            let ticket = server.submit(solve(instance)).expect("admitted");
            match (ticket.wait(), reference) {
                (Ok(served), Some(reference)) => {
                    assert_eq!(
                        served.plan.result.schedule, reference.schedule,
                        "workers={workers}: warm-context solve == cold solve"
                    );
                    assert_eq!(served.plan.result.metrics, reference.metrics);
                    assert_verified(instance.bench(), instance.synthesis(), &served.plan.result);
                }
                (Err(ServeError::Unservable(_)), None) => {}
                (got, want) => panic!(
                    "workers={workers}: served {:?} but cold reference served={}",
                    got.map(|s| s.plan.rung),
                    want.is_some()
                ),
            }
        }
        let stats = server.stats();
        assert!(
            stats.lru_evictions > 0,
            "workers={workers}: churn must actually evict (cap 2, {} chips)",
            pool.len()
        );
    }
}

#[test]
fn same_chip_different_schedule_strips_warm_state() {
    // Two instances sharing one chip but differing in base schedule: the
    // LRU may reuse the scratch pool across them, never the analyses.
    let bench = benchmarks::demo();
    let base = synthesize(&bench).unwrap();
    let cfg = ServeConfig {
        context_lru: 2,
        ..ServeConfig::default()
    };
    let op = base.schedule.ops().first().expect("demo has ops").op;
    let mut session = RepairSession::new(bench.clone(), base.clone(), cfg.planner.clone());
    session.plan();
    let repaired = session.repair(&PlanDelta::DelayOp { op, delay: 3 });
    assert!(repaired.is_served(), "delay repair must serve");
    let delayed = session.synthesis().clone();

    let a = Arc::new(Instance::new(bench.clone(), base));
    let b = Arc::new(Instance::new(bench, delayed));
    assert_eq!(a.chip_hash(), b.chip_hash(), "same chip");
    assert_ne!(a.instance_hash(), b.instance_hash(), "different schedule");
    let ref_b = plan_resilient(b.bench(), b.synthesis(), &cfg.planner)
        .served
        .expect("delayed instance solves");

    let server = PlanServer::start(ServeConfig { workers: 1, ..cfg });
    // Warm the LRU with A's context, then solve B on the same chip.
    server
        .submit(solve(&a))
        .expect("admitted")
        .wait()
        .expect("A serves");
    let served_b = server
        .submit(solve(&b))
        .expect("admitted")
        .wait()
        .expect("B serves");
    assert_eq!(
        served_b.plan.result.schedule, ref_b.schedule,
        "B must match its own cold solve, not inherit A's cached analyses"
    );
    let stats = server.stats();
    assert_eq!(stats.lru_pool_hits, 1, "B reused only A's scratch pool");
    assert_eq!(stats.lru_warm_hits, 0);
}

#[test]
fn soak_1k_requests_with_injected_panics() {
    let pool = faulted_pool(4);
    let cfg = ServeConfig::default();
    let cold: Vec<_> = pool
        .iter()
        .map(|i| plan_resilient(i.bench(), i.synthesis(), &cfg.planner).served)
        .collect();
    let events = request_stream(&StreamOptions {
        seed: 42,
        requests: 1000,
        pool: pool.len(),
        mean_gap_us: 1,
        reuse: 0.7,
        delta_ratio: 0.15,
    });
    let requests = materialize(&events, &pool, None);

    for workers in [1, 8] {
        // Chaos: crash the worker at dequeue for ids ≡ 13 (mod 97), and at
        // the memo-leader solve point for ids ≡ 50 (mod 101). Dequeue
        // crashes hit a known id set; solve crashes hit whoever happens to
        // lead — both must surface as typed errors, never kill the server.
        let hook: pdw_serve::Hook = Arc::new(|point, id| match point {
            HookPoint::Dequeue if id % 97 == 13 => panic!("injected dequeue crash"),
            HookPoint::Solve if id % 101 == 50 => panic!("injected solve crash"),
            _ => {}
        });
        let server = PlanServer::start_with(
            ServeConfig {
                workers,
                ..cfg.clone()
            },
            Arc::new(pdw_serve::WallClock::new()),
            Some(hook),
        );
        let run = run_open_loop(&server, &requests, false);
        assert_eq!(run.rows.len(), 1000);

        let mut panics = 0;
        for (i, row) in run.rows.iter().enumerate() {
            let (response, _) = match row {
                Submission::Done { response, latency } => (response, latency),
                Submission::Shed(r) => panic!("workers={workers}: unexpected shed: {r}"),
            };
            let id = i as u64; // single submitting thread: ids are ordinal
            match response {
                Ok(served) => {
                    assert!(
                        id % 97 != 13,
                        "workers={workers}: dequeue-hooked id {id} must not serve"
                    );
                    if !served.repaired {
                        // Solve responses are bit-identical to the cold
                        // reference of their instance.
                        let instance = &pool[events[i].pool_index];
                        let reference = cold[events[i].pool_index]
                            .as_ref()
                            .expect("served implies cold reference serves");
                        assert_eq!(served.plan.result.schedule, reference.schedule);
                        assert_verified(
                            instance.bench(),
                            instance.synthesis(),
                            &served.plan.result,
                        );
                    }
                }
                Err(ServeError::WorkerPanic(msg)) => {
                    panics += 1;
                    assert!(msg.contains("injected"), "only injected crashes: {msg}");
                }
                Err(other) => {
                    panic!("workers={workers}: request {id} unexpected error: {other}")
                }
            }
        }
        let stats = server.stats();
        assert_eq!(stats.worker_panics, panics as u64);
        assert!(panics >= 10, "the dequeue hook fires ~10 times in 1k ids");
        assert!(
            stats.memo_hits > 300,
            "workers={workers}: reuse-heavy stream mostly memo-hits (got {})",
            stats.memo_hits
        );
        assert!(stats.repairs > 0, "the stream carries repair deltas");

        // Terminal repair-session state re-verifies against its own
        // (mutated) instance: every repair response was ladder-verified at
        // serve time; here we independently re-check the last one against
        // the session's final chip state.
        let mut verified_sessions = 0;
        for instance in &pool {
            if let Some((synthesis, Some(last))) = server.repair_state(instance) {
                pdw_sim::validate(&synthesis.chip, &instance.bench().graph, &last.schedule)
                    .expect("terminal repaired plan validates on the mutated chip");
                let oracle =
                    pdw_sim::propagate(&synthesis.chip, &instance.bench().graph, &last.schedule);
                assert!(oracle.is_clean(), "terminal repaired plan is oracle-clean");
                verified_sessions += 1;
            }
        }
        assert!(
            verified_sessions > 0,
            "workers={workers}: at least one repair session exists"
        );

        // The server survives the chaos: it still serves after the storm.
        let after = server
            .submit(solve(&pool[0]))
            .expect("still admitting")
            .wait()
            .expect("still serving");
        assert!(after.memo_hit, "pool[0] is memoized by now");
    }
}

#[test]
fn warm_restart_serves_persisted_artifacts() {
    let path =
        std::env::temp_dir().join(format!("pdw-memo-{}-warm-restart.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let instance = demo_instance();
    let cfg = ServeConfig {
        memo_path: Some(path.clone()),
        ..ServeConfig::default()
    };

    // Cold server: one fresh solve, persisted on the way out.
    let first = {
        let server = PlanServer::start(cfg.clone());
        let served = server
            .submit(solve(&instance))
            .expect("admitted")
            .wait()
            .expect("served");
        assert!(!served.memo_hit && !served.degraded);
        let stats = server.stats();
        assert_eq!(stats.solves, 1);
        assert_eq!(stats.persist_hits, 0);
        assert_eq!(stats.persist_entries, 1, "the solve was persisted");
        server.shutdown();
        served
    };

    // Restarted server, same path: the memo cache is empty, so the request
    // becomes a memo leader — and is fulfilled from the persistent store
    // after its certificate re-verifies, with no fresh solve.
    let server = PlanServer::start(cfg);
    let served = server
        .submit(solve(&instance))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(served.memo_hit, "persisted artifact counts as a memo hit");
    assert_eq!(
        served.plan.result.schedule, first.plan.result.schedule,
        "the restarted server serves the identical persisted plan"
    );
    assert_eq!(served.plan.rung, first.plan.rung);
    assert_verified(instance.bench(), instance.synthesis(), &served.plan.result);

    // Subsequent requests hit the promoted in-memory memo, not the store.
    let again = server
        .submit(solve(&instance))
        .expect("admitted")
        .wait()
        .expect("served");
    assert!(again.memo_hit);

    let stats = server.stats();
    assert_eq!(stats.solves, 0, "the restart never re-solved");
    assert_eq!(stats.persist_hits, 1, "exactly one store round trip");
    assert_eq!(stats.persist_rejected, 0);
    assert_eq!(stats.persist_entries, 1);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
