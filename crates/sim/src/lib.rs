//! Schedule execution checking and assay metrics.
//!
//! This crate is the measurement harness of the reproduction: it validates
//! that a schedule is physically executable on a chip (dependencies, device
//! exclusivity, path validity, cell/time conflicts, wash adequacy),
//! replays contamination propagation cell by cell as an independent
//! correctness oracle ([`oracle`]), and
//! computes the metrics reported in the paper's evaluation —
//! `N_wash`, `L_wash`, `T_delay`, `T_assay` (Table II), per-operation
//! waiting times (Fig. 4), and total wash time (Fig. 5).
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_sim::{validate, Metrics};
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let s = synthesize(&bench)?;
//! validate(&s.chip, &bench.graph, &s.schedule)?;
//! let m = Metrics::measure(&bench.graph, &s.schedule);
//! assert_eq!(m.n_wash, 0); // synthesis emits no washes
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
pub mod oracle;
mod stats;
mod validate;

pub use metrics::Metrics;
pub use oracle::{propagate, IneffectiveWash, OracleReport, OracleViolation};
pub use stats::{DeviceUtilization, ScheduleStats, TaskMix};
pub use validate::{validate, SimError, DISSOLUTION_S};
