//! The paper's evaluation metrics.

use serde::{Deserialize, Serialize};

use pdw_assay::AssayGraph;
use pdw_biochip::{CELL_PITCH_MM, CHANNEL_HEIGHT_MM, CHANNEL_WIDTH_MM};
use pdw_sched::{Schedule, Time};

/// Metrics of a (possibly wash-optimized) schedule, matching the columns of
/// Table II and the series of Figs. 4–5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// `N_wash`: number of wash operations.
    pub n_wash: usize,
    /// `L_wash`: total length of wash paths in millimeters.
    pub l_wash_mm: f64,
    /// `T_assay`: completion time of the assay in seconds (last operation or
    /// trailing fluidic task).
    pub t_assay: Time,
    /// Total wash time in seconds (Fig. 5): sum of wash durations.
    pub total_wash_time: Time,
    /// Average waiting time of biochemical operations in seconds (Fig. 4):
    /// how long each operation sits ready (all parents finished) before it
    /// actually starts, averaged over operations.
    pub avg_wait: f64,
    /// Buffer fluid consumed by wash operations, in nanoliters: each wash
    /// fills its path's channel volume once
    /// (`L_wash × width × height`; the paper lists buffer consumption among
    /// the extra costs wash optimization should reduce).
    pub buffer_nl: f64,
}

impl Metrics {
    /// Measures a schedule.
    pub fn measure(graph: &AssayGraph, schedule: &Schedule) -> Self {
        let washes: Vec<_> = schedule
            .tasks()
            .filter(|(_, t)| t.kind().is_wash())
            .collect();
        let n_wash = washes.len();
        let l_wash_mm: f64 = washes
            .iter()
            .map(|(_, t)| t.path().len() as f64 * CELL_PITCH_MM)
            .sum();
        let total_wash_time: Time = washes.iter().map(|(_, t)| t.duration()).sum();
        // 1 mm³ = 1 µl = 1000 nl.
        let buffer_nl = l_wash_mm * CHANNEL_WIDTH_MM * CHANNEL_HEIGHT_MM * 1000.0;

        let mut wait_sum = 0.0;
        let mut wait_n = 0usize;
        for id in graph.op_ids() {
            let Some(sop) = schedule.scheduled_op(id) else {
                continue;
            };
            let ready = graph
                .op(id)
                .parent_ops()
                .filter_map(|p| schedule.scheduled_op(p).map(|s| s.end()))
                .max()
                .unwrap_or(0);
            wait_sum += sop.start.saturating_sub(ready) as f64;
            wait_n += 1;
        }
        let avg_wait = if wait_n == 0 {
            0.0
        } else {
            wait_sum / wait_n as f64
        };

        Metrics {
            n_wash,
            l_wash_mm,
            t_assay: schedule.makespan(),
            total_wash_time,
            avg_wait,
            buffer_nl,
        }
    }

    /// `T_delay`: the assay delay caused by wash, relative to the wash-free
    /// baseline schedule.
    pub fn delay_vs(&self, baseline: &Metrics) -> Time {
        self.t_assay.saturating_sub(baseline.t_assay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_assay::FluidType;
    use pdw_biochip::{Coord, FlowPath};
    use pdw_sched::{Task, TaskKind};
    use pdw_synth::synthesize;

    #[test]
    fn wash_free_schedule_has_zero_wash_metrics() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let m = Metrics::measure(&bench.graph, &s.schedule);
        assert_eq!(m.n_wash, 0);
        assert_eq!(m.l_wash_mm, 0.0);
        assert_eq!(m.total_wash_time, 0);
        assert!(m.t_assay > 0);
    }

    #[test]
    fn buffer_volume_tracks_wash_length() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut schedule = s.schedule.clone();
        let path = FlowPath::new(vec![Coord::new(0, 4), Coord::new(1, 4)]).unwrap();
        let end = schedule.makespan();
        schedule.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            end,
            3,
            FluidType::BUFFER,
        ));
        let m = Metrics::measure(&bench.graph, &schedule);
        let expected = m.l_wash_mm * CHANNEL_WIDTH_MM * CHANNEL_HEIGHT_MM * 1000.0;
        assert!((m.buffer_nl - expected).abs() < 1e-9);
        assert!(m.buffer_nl > 0.0);
    }

    #[test]
    fn wash_tasks_contribute_to_all_wash_metrics() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut schedule = s.schedule.clone();
        let path = FlowPath::new(vec![Coord::new(0, 4), Coord::new(1, 4)]).unwrap();
        let end = schedule.makespan();
        schedule.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            end,
            3,
            FluidType::BUFFER,
        ));
        let m = Metrics::measure(&bench.graph, &schedule);
        assert_eq!(m.n_wash, 1);
        assert!((m.l_wash_mm - 2.0 * CELL_PITCH_MM).abs() < 1e-12);
        assert_eq!(m.total_wash_time, 3);
        assert_eq!(m.t_assay, end + 3);
    }

    #[test]
    fn delay_vs_baseline_is_saturating() {
        let a = Metrics {
            n_wash: 0,
            l_wash_mm: 0.0,
            t_assay: 30,
            total_wash_time: 0,
            avg_wait: 0.0,
            buffer_nl: 0.0,
        };
        let b = Metrics {
            t_assay: 36,
            ..a.clone()
        };
        assert_eq!(b.delay_vs(&a), 6);
        assert_eq!(a.delay_vs(&b), 0);
    }

    #[test]
    fn waiting_time_counts_resource_stalls() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let m = Metrics::measure(&bench.graph, &s.schedule);
        // Transports take time, so ops wait at least a little on average.
        assert!(m.avg_wait > 0.0);
    }
}
