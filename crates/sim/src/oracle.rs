//! Independent contamination-propagation oracle.
//!
//! [`propagate`] replays a complete schedule as a cell-level state machine:
//! every non-wash task deposits residue of its fluid on the interior
//! (residue-capable) cells of its path when it ends (Eq. 8), every
//! operation deposits its output fluid on its device footprint when it ends
//! (Eq. 19), and every *effective* wash dissolves the residue on the
//! interior cells of its path when it ends (Eqs. 17, 20–21). A wash shorter
//! than its flush + dissolution time (`flow_duration(len) + DISSOLUTION_S`)
//! cannot dissolve anything and is replayed as a no-op, recorded in
//! [`OracleReport::ineffective_washes`].
//!
//! Against that evolving state the oracle checks, in time order:
//!
//! - **deliveries** (injections and transports) at their start: no interior
//!   path cell may hold residue of a foreign, non-buffer fluid. Cells of
//!   the delivery's own source/destination device footprints are exempt —
//!   fluids meeting inside a device are the intended chemistry.
//! - **operations** at their start: no footprint cell may hold residue of a
//!   fluid that is neither buffer nor one of the operation's input fluids.
//!
//! Waste-disposal tasks (excess/output removals) are never checked: their
//! payload is headed off-chip and may cross residue freely (the Type-3
//! rule, Eq. 10).
//!
//! The oracle is deliberately independent of `pdw-contam`: it never looks
//! at the necessity analysis, its exemption types, or its wash
//! requirements. It only knows the paper's physical deposition/dissolution
//! rules, so it can catch a subtly wrong necessity or exemption rule that
//! ships a cross-contaminated plan. Unlike the first-error validators it
//! reports *every* violation it finds.

use std::collections::HashMap;
use std::fmt;

use pdw_assay::{AssayGraph, FluidType, OpId};
use pdw_biochip::{Chip, Coord, DeviceId};
use pdw_sched::{flow_duration, Schedule, TaskId, TaskKind, Time};

use crate::validate::DISSOLUTION_S;

/// A single contamination incident found by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OracleViolation {
    /// A delivery traverses a cell holding foreign residue at its start.
    DirtyDelivery {
        /// The contaminated delivery task.
        task: TaskId,
        /// The dirty cell.
        cell: Coord,
        /// The residue on the cell.
        residue: FluidType,
        /// When the residue was deposited.
        residue_since: Time,
        /// The fluid being delivered.
        fluid: FluidType,
        /// The delivery's start time.
        time: Time,
    },
    /// An operation starts while its device footprint holds residue that is
    /// neither buffer nor one of the operation's input fluids.
    DirtyOperation {
        /// The contaminated operation.
        op: OpId,
        /// The dirty footprint cell.
        cell: Coord,
        /// The residue on the cell.
        residue: FluidType,
        /// When the residue was deposited.
        residue_since: Time,
        /// The operation's start time.
        time: Time,
    },
    /// A task references an operation that is not scheduled, so its device
    /// exemptions cannot be resolved.
    UnboundOp {
        /// The referencing task.
        task: TaskId,
        /// The unscheduled operation.
        op: OpId,
    },
    /// A scheduled operation does not exist in the assay graph.
    UnknownOp {
        /// The out-of-range operation id.
        op: OpId,
    },
    /// A scheduled operation is bound to a device that does not exist on
    /// the chip.
    UnknownDevice {
        /// The operation.
        op: OpId,
        /// The out-of-range device id.
        device: DeviceId,
    },
    /// A task's path crosses a chip fault — a clogged cell, a stuck-closed
    /// valve, or a disabled endpoint port. On the faulted chip no pump can
    /// actually drive fluid along that path, so the plan is unexecutable.
    FaultedPath {
        /// The offending task.
        task: TaskId,
        /// A cell on the fault (the clogged cell, one valve endpoint, or
        /// the disabled port).
        cell: Coord,
        /// What kind of fault the path crosses.
        detail: String,
    },
}

impl fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleViolation::DirtyDelivery {
                task,
                cell,
                residue,
                residue_since,
                fluid,
                time,
            } => write!(
                f,
                "delivery {task} of {fluid} at t={time} crosses cell {cell} \
                 holding residue {residue} (deposited at t={residue_since})"
            ),
            OracleViolation::DirtyOperation {
                op,
                cell,
                residue,
                residue_since,
                time,
            } => write!(
                f,
                "operation {op} starts at t={time} on footprint cell {cell} \
                 holding foreign residue {residue} (deposited at t={residue_since})"
            ),
            OracleViolation::UnboundOp { task, op } => {
                write!(f, "task {task} references unscheduled operation {op}")
            }
            OracleViolation::UnknownOp { op } => {
                write!(
                    f,
                    "scheduled operation {op} does not exist in the assay graph"
                )
            }
            OracleViolation::UnknownDevice { op, device } => {
                write!(f, "operation {op} is bound to nonexistent device {device}")
            }
            OracleViolation::FaultedPath { task, cell, detail } => {
                write!(f, "task {task} crosses a chip fault at {cell}: {detail}")
            }
        }
    }
}

/// A wash too short to dissolve residue (Eq. 17): replayed as a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IneffectiveWash {
    /// The wash task.
    pub task: TaskId,
    /// Required duration (`flow_duration(len) + DISSOLUTION_S`).
    pub required: Time,
    /// Actual duration.
    pub actual: Time,
}

impl fmt::Display for IneffectiveWash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wash {} lasts {} s but needs {} s to dissolve residue; replayed as a no-op",
            self.task, self.actual, self.required
        )
    }
}

/// Everything the oracle observed while replaying a schedule.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// All contamination incidents, in replay (time) order.
    pub violations: Vec<OracleViolation>,
    /// Washes replayed as no-ops because they are too short (Eq. 17).
    pub ineffective_washes: Vec<IneffectiveWash>,
    /// Number of residue depositions replayed.
    pub deposits: usize,
    /// Number of cells dissolved clean by effective washes.
    pub dissolved: usize,
    /// Number of delivery/operation cleanliness checks performed.
    pub checks: usize,
}

impl OracleReport {
    /// `true` when the replay found no contamination incident.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "oracle: {} violations ({} deposits, {} dissolved, {} checks, {} ineffective washes)",
            self.violations.len(),
            self.deposits,
            self.dissolved,
            self.checks,
            self.ineffective_washes.len()
        )
    }
}

/// One timeline entry of the replay. The discriminant order encodes the
/// tie-break at equal times: residue lands (task/op ends are exclusive) and
/// washes dissolve before anything starting at that instant is checked.
enum Event {
    /// A task or operation finished and left residue behind.
    Deposit { cells: Vec<Coord>, fluid: FluidType },
    /// An effective wash finished and dissolved the residue on its path.
    Dissolve { cells: Vec<Coord> },
    /// A delivery starts: its interior path cells must be clean.
    CheckDelivery { task: TaskId },
    /// An operation starts: its footprint must hold only tolerated fluids.
    CheckOp { op: OpId, device: DeviceId },
}

impl Event {
    fn rank(&self) -> u8 {
        match self {
            Event::Deposit { .. } => 0,
            Event::Dissolve { .. } => 1,
            Event::CheckDelivery { .. } | Event::CheckOp { .. } => 2,
        }
    }
}

/// Dense per-cell residue state: at most one residue per cell, the most
/// recent deposit winning (`R_c` with timestamp `t^c_{x,y}`, Eq. 8).
struct ResidueGrid {
    width: usize,
    cells: Vec<Option<(FluidType, Time)>>,
}

impl ResidueGrid {
    fn new(chip: &Chip) -> Self {
        let width = chip.grid().width() as usize;
        let height = chip.grid().height() as usize;
        ResidueGrid {
            width,
            cells: vec![None; width * height],
        }
    }

    fn idx(&self, c: Coord) -> usize {
        c.y as usize * self.width + c.x as usize
    }

    fn get(&self, c: Coord) -> Option<(FluidType, Time)> {
        self.cells[self.idx(c)]
    }

    fn deposit(&mut self, c: Coord, fluid: FluidType, time: Time) {
        let i = self.idx(c);
        self.cells[i] = Some((fluid, time));
    }

    /// Returns `true` if the cell actually held residue.
    fn dissolve(&mut self, c: Coord) -> bool {
        let i = self.idx(c);
        self.cells[i].take().is_some()
    }
}

/// Interior (residue-capable) cells of a path: ports at the ends neither
/// hold nor receive residue. Out-of-grid cells (possible in arbitrarily
/// mutated schedules) are skipped rather than panicked on.
fn interior(chip: &Chip, task: &pdw_sched::Task) -> Vec<Coord> {
    task.path()
        .iter()
        .copied()
        .filter(|&c| chip.grid().get(c).is_some_and(|k| k.can_hold_residue()))
        .collect()
}

/// Reports every chip fault a task's path crosses: clogged cells, stuck
/// valves between consecutive cells, and disabled endpoint ports.
fn fault_violations(
    chip: &Chip,
    id: TaskId,
    task: &pdw_sched::Task,
    out: &mut Vec<OracleViolation>,
) {
    let faults = chip.faults();
    if faults.is_empty() {
        return;
    }
    let cells = task.path().cells();
    for &c in cells {
        if faults.cell_blocked(c) {
            out.push(OracleViolation::FaultedPath {
                task: id,
                cell: c,
                detail: "cell is clogged".into(),
            });
        }
    }
    for w in cells.windows(2) {
        if faults.edge_blocked(w[0], w[1]) {
            out.push(OracleViolation::FaultedPath {
                task: id,
                cell: w[0],
                detail: format!("valve to {} is stuck closed", w[1]),
            });
        }
    }
    for &end in [cells.first(), cells.last()].into_iter().flatten() {
        let disabled = match chip.grid().get(end) {
            Some(pdw_biochip::CellKind::FlowPort(p)) => faults.flow_port_disabled(p),
            Some(pdw_biochip::CellKind::WastePort(p)) => faults.waste_port_disabled(p),
            _ => false,
        };
        if disabled {
            out.push(OracleViolation::FaultedPath {
                task: id,
                cell: end,
                detail: "endpoint port is disabled".into(),
            });
        }
    }
}

/// Replays `schedule` on `chip` and reports every instant where a later
/// fluid meets foreign residue (see the [module docs](self)).
///
/// The replay is total: malformed references (a delivery feeding an
/// unscheduled operation, an operation missing from the graph) become
/// [`OracleViolation`] entries instead of panics, so the oracle can be
/// pointed at arbitrarily mutated schedules.
pub fn propagate(chip: &Chip, graph: &AssayGraph, schedule: &Schedule) -> OracleReport {
    let mut report = OracleReport::default();
    let op_count = graph.ops().len() as u32;
    let op_dev: HashMap<OpId, DeviceId> = schedule.ops().iter().map(|s| (s.op, s.device)).collect();

    // Build the timeline. Construction order (tasks in id order, then ops
    // in schedule order) is deterministic; the sort below is stable.
    let mut timeline: Vec<(Time, Event)> = Vec::new();
    for (id, task) in schedule.tasks() {
        fault_violations(chip, id, task, &mut report.violations);
        if task.kind().is_wash() {
            let required = flow_duration(task.path().len()) + DISSOLUTION_S;
            if task.duration() < required {
                report.ineffective_washes.push(IneffectiveWash {
                    task: id,
                    required,
                    actual: task.duration(),
                });
            } else {
                timeline.push((
                    task.end(),
                    Event::Dissolve {
                        cells: interior(chip, task),
                    },
                ));
            }
        } else {
            timeline.push((
                task.end(),
                Event::Deposit {
                    cells: interior(chip, task),
                    fluid: task.fluid(),
                },
            ));
            if task.kind().is_delivery() {
                timeline.push((task.start(), Event::CheckDelivery { task: id }));
            }
        }
    }
    for sop in schedule.ops() {
        if sop.op.0 >= op_count {
            report
                .violations
                .push(OracleViolation::UnknownOp { op: sop.op });
            continue;
        }
        let Some(device) = chip.try_device(sop.device) else {
            report.violations.push(OracleViolation::UnknownDevice {
                op: sop.op,
                device: sop.device,
            });
            continue;
        };
        timeline.push((
            sop.end(),
            Event::Deposit {
                cells: device.footprint().to_vec(),
                fluid: graph.output_fluid(sop.op),
            },
        ));
        timeline.push((
            sop.start,
            Event::CheckOp {
                op: sop.op,
                device: sop.device,
            },
        ));
    }
    timeline.sort_by_key(|(t, e)| (*t, e.rank()));

    let mut residue = ResidueGrid::new(chip);
    for (time, event) in timeline {
        match event {
            Event::Deposit { cells, fluid } => {
                for c in cells {
                    residue.deposit(c, fluid, time);
                    report.deposits += 1;
                }
            }
            Event::Dissolve { cells } => {
                for c in cells {
                    if residue.dissolve(c) {
                        report.dissolved += 1;
                    }
                }
            }
            Event::CheckDelivery { task: id } => {
                report.checks += 1;
                let task = schedule.task(id);
                let mut exempt: Vec<Coord> = Vec::new();
                let mut feeds: Vec<OpId> = Vec::new();
                match *task.kind() {
                    TaskKind::Injection { op, .. } => feeds.push(op),
                    TaskKind::Transport { from_op, to_op } => {
                        feeds.push(from_op);
                        feeds.push(to_op);
                    }
                    _ => {}
                }
                for op in feeds {
                    match op_dev.get(&op) {
                        // A bogus device was already reported above.
                        Some(&dev) => {
                            if let Some(d) = chip.try_device(dev) {
                                exempt.extend(d.footprint());
                            }
                        }
                        None => report
                            .violations
                            .push(OracleViolation::UnboundOp { task: id, op }),
                    }
                }
                for cell in interior(chip, task) {
                    if exempt.contains(&cell) {
                        continue;
                    }
                    if let Some((r, since)) = residue.get(cell) {
                        if !r.is_buffer() && r != task.fluid() {
                            report.violations.push(OracleViolation::DirtyDelivery {
                                task: id,
                                cell,
                                residue: r,
                                residue_since: since,
                                fluid: task.fluid(),
                                time,
                            });
                        }
                    }
                }
            }
            Event::CheckOp { op, device } => {
                report.checks += 1;
                let tolerated: Vec<FluidType> = graph
                    .op(op)
                    .inputs()
                    .iter()
                    .map(|&inp| graph.input_fluid(inp))
                    .collect();
                let Some(dev) = chip.try_device(device) else {
                    continue; // bogus device already reported above
                };
                for &cell in dev.footprint() {
                    if let Some((r, since)) = residue.get(cell) {
                        if !r.is_buffer() && !tolerated.contains(&r) {
                            report.violations.push(OracleViolation::DirtyOperation {
                                op,
                                cell,
                                residue: r,
                                residue_since: since,
                                time,
                            });
                        }
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_sched::Task;
    use pdw_synth::synthesize;

    #[test]
    fn raw_synthesis_schedule_is_dirty() {
        // Without washes some delivery must cross residue, and the oracle
        // must see it just like `pdw_contam::verify_clean` does.
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let report = propagate(&s.chip, &bench.graph, &s.schedule);
        assert!(!report.is_clean());
        assert!(report.deposits > 0);
        assert!(report.checks > 0);
    }

    #[test]
    fn short_wash_is_replayed_as_noop() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut sched = s.schedule.clone();
        let path = sched.tasks().next().unwrap().1.path().clone();
        let end = sched.makespan();
        sched.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            end,
            1, // far below flush + dissolution for any real path
            pdw_assay::FluidType::BUFFER,
        ));
        let report = propagate(&s.chip, &bench.graph, &sched);
        assert_eq!(report.ineffective_washes.len(), 1);
    }

    #[test]
    fn unscheduled_op_reference_is_reported_not_panicked() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut sched = pdw_sched::Schedule::new();
        for t in s.schedule.tasks().map(|(_, t)| t.clone()) {
            sched.push_task(t); // tasks without any scheduled ops
        }
        let report = propagate(&s.chip, &bench.graph, &sched);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, OracleViolation::UnboundOp { .. })));
    }

    #[test]
    fn schedule_crossing_a_fault_is_flagged() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        // The pristine schedule has violations only of the contamination
        // kind; fault the chip under a cell some task actually traverses
        // and the oracle must additionally flag every crossing.
        let cell = s.schedule.tasks().next().unwrap().1.path().cells()[1];
        let mut faults = pdw_biochip::FaultSet::new();
        faults.block_cell(cell);
        let faulted = s.chip.with_faults(faults).unwrap();
        let report = propagate(&faulted, &bench.graph, &s.schedule);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, OracleViolation::FaultedPath { cell: c, .. } if *c == cell)));
        // The pristine chip reports no fault crossings at all.
        let clean = propagate(&s.chip, &bench.graph, &s.schedule);
        assert!(!clean
            .violations
            .iter()
            .any(|v| matches!(v, OracleViolation::FaultedPath { .. })));
    }

    #[test]
    fn out_of_grid_path_cell_is_skipped_not_panicked() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut sched = s.schedule.clone();
        // A path entirely outside the grid: FlowPath only checks adjacency,
        // so mutated/corrupted schedules can carry such cells.
        let w = s.chip.grid().width();
        let cells = vec![Coord::new(w, 0), Coord::new(w, 1), Coord::new(w, 2)];
        let path = pdw_biochip::FlowPath::new(cells).unwrap();
        let end = sched.makespan() + 10;
        sched.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            end,
            100,
            pdw_assay::FluidType::BUFFER,
        ));
        // Must not panic even though every cell lies outside the grid.
        let _ = propagate(&s.chip, &bench.graph, &sched);
    }

    #[test]
    fn out_of_graph_op_is_reported_not_panicked() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut sched = s.schedule.clone();
        let bogus = OpId(bench.graph.ops().len() as u32 + 7);
        let dev = sched.ops()[0].device;
        sched.push_op(pdw_sched::ScheduledOp {
            op: bogus,
            device: dev,
            start: 0,
            duration: 1,
        });
        let report = propagate(&s.chip, &bench.graph, &sched);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, OracleViolation::UnknownOp { op } if *op == bogus)));
    }
}
