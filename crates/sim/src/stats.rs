//! Descriptive schedule statistics: device utilization, fluidic
//! parallelism, task mix.

use serde::{Deserialize, Serialize};

use pdw_biochip::{Chip, DeviceId};
use pdw_sched::{Schedule, TaskKind, Time};

/// Utilization of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceUtilization {
    /// The device.
    pub device: DeviceId,
    /// Seconds the device spends executing operations.
    pub busy: Time,
    /// `busy / makespan` (0 when the schedule is empty).
    pub utilization: f64,
}

/// Task counts by kind: `[injection, transport, excess, output, wash]`.
pub type TaskMix = [usize; 5];

/// Aggregate statistics of a schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Per-device execution utilization, indexed by [`DeviceId`].
    pub devices: Vec<DeviceUtilization>,
    /// Maximum number of fluidic tasks active in the same second.
    pub peak_parallel_tasks: usize,
    /// Time-averaged number of active fluidic tasks.
    pub avg_parallel_tasks: f64,
    /// Task counts by kind.
    pub task_mix: TaskMix,
}

impl ScheduleStats {
    /// Collects statistics for `schedule` on `chip`.
    pub fn collect(chip: &Chip, schedule: &Schedule) -> Self {
        let makespan = schedule.makespan();

        let mut busy = vec![0u32; chip.devices().len()];
        for sop in schedule.ops() {
            busy[sop.device.0 as usize] += sop.duration;
        }
        let devices = chip
            .devices()
            .iter()
            .map(|d| DeviceUtilization {
                device: d.id(),
                busy: busy[d.id().0 as usize],
                utilization: if makespan == 0 {
                    0.0
                } else {
                    busy[d.id().0 as usize] as f64 / makespan as f64
                },
            })
            .collect();

        // Parallelism profile via a sweep over start/end events.
        let mut delta: std::collections::BTreeMap<Time, i64> = std::collections::BTreeMap::new();
        for (_, t) in schedule.tasks() {
            *delta.entry(t.start()).or_insert(0) += 1;
            *delta.entry(t.end()).or_insert(0) -= 1;
        }
        let mut active = 0i64;
        let mut peak = 0i64;
        let mut weighted = 0f64;
        let mut prev: Option<Time> = None;
        for (&t, &d) in &delta {
            if let Some(p) = prev {
                weighted += active as f64 * (t - p) as f64;
            }
            active += d;
            peak = peak.max(active);
            prev = Some(t);
        }
        let avg = if makespan == 0 {
            0.0
        } else {
            weighted / makespan as f64
        };

        let mut task_mix = [0usize; 5];
        for (_, t) in schedule.tasks() {
            let idx = match t.kind() {
                TaskKind::Injection { .. } => 0,
                TaskKind::Transport { .. } => 1,
                TaskKind::ExcessRemoval { .. } => 2,
                TaskKind::OutputRemoval { .. } => 3,
                TaskKind::Wash { .. } => 4,
            };
            task_mix[idx] += 1;
        }

        ScheduleStats {
            devices,
            peak_parallel_tasks: peak.max(0) as usize,
            avg_parallel_tasks: avg,
            task_mix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn utilization_is_bounded_and_nonzero_for_used_devices() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let stats = ScheduleStats::collect(&s.chip, &s.schedule);
        assert_eq!(stats.devices.len(), s.chip.devices().len());
        for d in &stats.devices {
            assert!(d.utilization >= 0.0 && d.utilization <= 1.0);
        }
        // Every demo device executes at least one operation.
        assert!(stats.devices.iter().all(|d| d.busy > 0));
    }

    #[test]
    fn busy_time_sums_to_op_durations() {
        let bench = benchmarks::pcr();
        let s = synthesize(&bench).unwrap();
        let stats = ScheduleStats::collect(&s.chip, &s.schedule);
        let total_busy: u32 = stats.devices.iter().map(|d| d.busy).sum();
        let total_ops: u32 = s.schedule.ops().iter().map(|o| o.duration).sum();
        assert_eq!(total_busy, total_ops);
    }

    #[test]
    fn parallelism_bounds() {
        let bench = benchmarks::ivd();
        let s = synthesize(&bench).unwrap();
        let stats = ScheduleStats::collect(&s.chip, &s.schedule);
        assert!(stats.peak_parallel_tasks >= 1);
        assert!(stats.avg_parallel_tasks > 0.0);
        assert!(stats.avg_parallel_tasks <= stats.peak_parallel_tasks as f64);
    }

    #[test]
    fn task_mix_counts_everything_once() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let stats = ScheduleStats::collect(&s.chip, &s.schedule);
        assert_eq!(
            stats.task_mix.iter().sum::<usize>(),
            s.schedule.task_count()
        );
        assert_eq!(stats.task_mix[4], 0, "synthesis emits no washes");
    }

    #[test]
    fn empty_schedule_is_all_zero() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let stats = ScheduleStats::collect(&s.chip, &pdw_sched::Schedule::new());
        assert_eq!(stats.peak_parallel_tasks, 0);
        assert_eq!(stats.avg_parallel_tasks, 0.0);
        assert!(stats.devices.iter().all(|d| d.busy == 0));
    }
}
