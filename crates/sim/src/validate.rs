//! Physical-executability validation of schedules.

use std::fmt;

use pdw_assay::{AssayGraph, OpId};
use pdw_biochip::{Chip, Coord};
use pdw_sched::flow_duration;
use pdw_sched::{Schedule, TaskId, TaskKind, Time};

/// Dissolution time `t_d` of residues in buffer, in seconds (Eq. 17).
///
/// The paper takes dissolution kinetics from protein-diffusion data \[11\];
/// one second per wash matches the scale of its schedules.
pub const DISSOLUTION_S: Time = 1;

/// Ways a schedule can be physically invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An operation starts before a parent finishes (Eq. 2).
    DependencyViolated {
        /// Parent operation.
        parent: OpId,
        /// Child operation.
        child: OpId,
    },
    /// Two operations overlap on the same device (Eq. 3).
    DeviceOverlap {
        /// First operation.
        a: OpId,
        /// Second operation.
        b: OpId,
    },
    /// A delivery ends after its operation starts (Eqs. 4–5).
    LateDelivery {
        /// The delivery task.
        task: TaskId,
        /// The operation it feeds.
        op: OpId,
    },
    /// Two tasks overlap in time while sharing a cell (Eq. 8/19/20).
    TaskConflict {
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
        /// A shared cell.
        cell: Coord,
    },
    /// A task crosses a device while an unrelated operation's fluid occupies
    /// it (loading, executing, or awaiting pickup).
    DeviceCrossed {
        /// The offending task.
        task: TaskId,
        /// The occupied operation.
        op: OpId,
    },
    /// A task's path is not a complete flow path on the chip.
    BadPath {
        /// The offending task.
        task: TaskId,
        /// Human-readable reason.
        reason: String,
    },
    /// A wash is shorter than its required flush + dissolution time
    /// (Eqs. 17–18).
    WashTooShort {
        /// The offending wash task.
        task: TaskId,
        /// Required duration.
        required: Time,
        /// Actual duration.
        actual: Time,
    },
    /// An operation executes for less than its protocol time (Eq. 1).
    OpTooShort {
        /// The offending operation.
        op: OpId,
    },
    /// An operation appears more than once or not at all.
    OpCountMismatch,
    /// A task references an operation that is not scheduled.
    UnboundOp {
        /// The referencing task.
        task: TaskId,
        /// The unscheduled operation.
        op: OpId,
    },
    /// A scheduled operation is bound to a device that does not exist on
    /// the chip.
    UnknownDevice {
        /// The operation.
        op: OpId,
        /// The out-of-range device id.
        device: pdw_biochip::DeviceId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DependencyViolated { parent, child } => {
                write!(f, "{child} starts before its parent {parent} finishes")
            }
            SimError::DeviceOverlap { a, b } => {
                write!(f, "operations {a} and {b} overlap on the same device")
            }
            SimError::LateDelivery { task, op } => {
                write!(f, "delivery {task} ends after operation {op} starts")
            }
            SimError::TaskConflict { a, b, cell } => {
                write!(f, "tasks {a} and {b} overlap in time and share cell {cell}")
            }
            SimError::DeviceCrossed { task, op } => {
                write!(f, "task {task} crosses the device occupied by {op}")
            }
            SimError::BadPath { task, reason } => {
                write!(f, "task {task} has an invalid flow path: {reason}")
            }
            SimError::WashTooShort {
                task,
                required,
                actual,
            } => write!(
                f,
                "wash {task} lasts {actual} s but needs {required} s (flush + dissolution)"
            ),
            SimError::OpTooShort { op } => {
                write!(f, "operation {op} executes for less than its protocol time")
            }
            SimError::OpCountMismatch => {
                write!(f, "schedule does not execute every operation exactly once")
            }
            SimError::UnboundOp { task, op } => {
                write!(f, "task {task} references unscheduled operation {op}")
            }
            SimError::UnknownDevice { op, device } => {
                write!(f, "operation {op} is bound to nonexistent device {device}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Validates that `schedule` is physically executable on `chip` for the
/// assay `graph`.
///
/// Checks, in order: every operation scheduled exactly once with a
/// sufficient duration; dependency precedence; per-device exclusivity;
/// delivery-before-start; path validity of every task; pairwise task
/// conflicts; device occupancy (no foreign task crosses a device between
/// the start of an operation's loading and the pickup of its result); and
/// wash adequacy (Eq. 17/18).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate(chip: &Chip, graph: &AssayGraph, schedule: &Schedule) -> Result<(), SimError> {
    // Exactly one scheduled instance per op, with adequate duration.
    if schedule.ops().len() != graph.ops().len() {
        return Err(SimError::OpCountMismatch);
    }
    for id in graph.op_ids() {
        let count = schedule.ops().iter().filter(|s| s.op == id).count();
        if count != 1 {
            return Err(SimError::OpCountMismatch);
        }
        let sop = schedule.scheduled_op(id).expect("counted above");
        if sop.duration < graph.op(id).duration() {
            return Err(SimError::OpTooShort { op: id });
        }
        if chip.try_device(sop.device).is_none() {
            return Err(SimError::UnknownDevice {
                op: id,
                device: sop.device,
            });
        }
    }

    // Dependencies.
    for (parent, child) in graph.dep_edges() {
        let p = schedule.scheduled_op(parent).expect("scheduled");
        let c = schedule.scheduled_op(child).expect("scheduled");
        if c.start < p.end() {
            return Err(SimError::DependencyViolated { parent, child });
        }
    }

    // Device exclusivity.
    let ops = schedule.ops();
    for (i, a) in ops.iter().enumerate() {
        for b in &ops[i + 1..] {
            if a.device == b.device && a.start < b.end() && b.start < a.end() {
                return Err(SimError::DeviceOverlap { a: a.op, b: b.op });
            }
        }
    }

    // Deliveries precede their operations; paths are valid; washes adequate.
    for (id, task) in schedule.tasks() {
        if let Err(e) = chip.validate_path(task.path()) {
            return Err(SimError::BadPath {
                task: id,
                reason: e.to_string(),
            });
        }
        let feeds = match *task.kind() {
            TaskKind::Injection { op, .. } => Some(op),
            TaskKind::Transport { to_op, .. } => Some(to_op),
            _ => None,
        };
        if let Some(op) = feeds {
            // Reachable from malformed schedules: the op-count check above
            // only covers operations of the graph, not arbitrary task refs.
            let Some(sop) = schedule.scheduled_op(op) else {
                return Err(SimError::UnboundOp { task: id, op });
            };
            if task.end() > sop.start {
                return Err(SimError::LateDelivery { task: id, op });
            }
        }
        if task.kind().is_wash() {
            let required = flow_duration(task.path().len()) + DISSOLUTION_S;
            if task.duration() < required {
                return Err(SimError::WashTooShort {
                    task: id,
                    required,
                    actual: task.duration(),
                });
            }
        }
    }

    // Pairwise task conflicts.
    let ids = schedule.tasks_chronological();
    for (i, &a) in ids.iter().enumerate() {
        let ta = schedule.task(a);
        for &b in &ids[i + 1..] {
            let tb = schedule.task(b);
            if tb.start() >= ta.end() {
                break; // chronological order: no later task can overlap
            }
            if ta.path().overlaps(tb.path()) {
                let cell = *ta
                    .path()
                    .iter()
                    .find(|c| tb.path().contains(**c))
                    .expect("overlap reported");
                return Err(SimError::TaskConflict { a, b, cell });
            }
        }
    }

    // Device occupancy: from the start of an operation's first delivery to
    // the end of the task that picks up (or removes) its result, no
    // unrelated task may cross the device footprint.
    for sop in schedule.ops() {
        let mut occupied_from = sop.start;
        let mut occupied_to = sop.end();
        let mut related: Vec<TaskId> = Vec::new();
        for (id, task) in schedule.tasks() {
            match *task.kind() {
                TaskKind::Injection { op, .. } | TaskKind::ExcessRemoval { op } if op == sop.op => {
                    occupied_from = occupied_from.min(task.start());
                    related.push(id);
                }
                TaskKind::Transport { from_op, to_op } => {
                    if to_op == sop.op {
                        occupied_from = occupied_from.min(task.start());
                        related.push(id);
                    }
                    if from_op == sop.op {
                        occupied_to = occupied_to.max(task.end());
                        related.push(id);
                    }
                }
                TaskKind::OutputRemoval { op } if op == sop.op => {
                    occupied_to = occupied_to.max(task.end());
                    related.push(id);
                }
                _ => {}
            }
        }
        // The op-count pass above rejected unknown devices, so this lookup
        // cannot fail; `try_device` keeps the validator total regardless.
        let Some(dev) = chip.try_device(sop.device) else {
            return Err(SimError::UnknownDevice {
                op: sop.op,
                device: sop.device,
            });
        };
        let foot = dev.footprint();
        for (id, task) in schedule.tasks() {
            if related.contains(&id) {
                continue;
            }
            let overlaps_window = task.start() < occupied_to && occupied_from < task.end();
            if overlaps_window && foot.iter().any(|c| task.path().contains(*c)) {
                return Err(SimError::DeviceCrossed {
                    task: id,
                    op: sop.op,
                });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_assay::FluidType;
    use pdw_sched::Task;
    use pdw_synth::synthesize;

    #[test]
    fn synthesized_suite_validates() {
        for bench in benchmarks::suite() {
            let s = synthesize(&bench).unwrap();
            validate(&s.chip, &bench.graph, &s.schedule)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        }
    }

    #[test]
    fn detects_dependency_violation() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut bad = s.schedule.clone();
        // Drag the last op to time zero.
        let last = bad.ops().last().unwrap().op;
        for op in bad.ops_mut() {
            if op.op == last {
                op.start = 0;
            }
        }
        assert!(matches!(
            validate(&s.chip, &bench.graph, &bad),
            Err(SimError::DependencyViolated { .. }) | Err(SimError::LateDelivery { .. })
        ));
    }

    #[test]
    fn detects_task_conflict() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut bad = s.schedule.clone();
        // Duplicate a task on top of itself.
        let (_, t0) = bad.tasks().next().map(|(i, t)| (i, t.clone())).unwrap();
        bad.push_task(t0);
        assert!(matches!(
            validate(&s.chip, &bench.graph, &bad),
            Err(SimError::TaskConflict { .. }) | Err(SimError::DeviceCrossed { .. })
        ));
    }

    #[test]
    fn detects_short_wash() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut bad = s.schedule.clone();
        // A 1-second wash over a long path is inadequate.
        let path = bad.tasks().next().unwrap().1.path().clone();
        let far_future = bad.makespan() + 100;
        bad.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            far_future,
            1,
            FluidType::BUFFER,
        ));
        assert!(matches!(
            validate(&s.chip, &bench.graph, &bad),
            Err(SimError::WashTooShort { .. })
        ));
    }

    #[test]
    fn detects_unbound_task_op() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut bad = s.schedule.clone();
        let path = bad.tasks().next().unwrap().1.path().clone();
        let far_future = bad.makespan() + 50;
        bad.push_task(Task::new(
            TaskKind::Transport {
                from_op: OpId(900),
                to_op: OpId(901),
            },
            path,
            far_future,
            2,
            FluidType(3),
        ));
        assert!(matches!(
            validate(&s.chip, &bench.graph, &bad),
            Err(SimError::UnboundOp { .. })
        ));
    }

    #[test]
    fn faulted_chip_turns_valid_schedule_into_bad_path() {
        // A schedule planned on the pristine chip crosses the fault; the
        // validator must report it as an invalid path, not execute it.
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        validate(&s.chip, &bench.graph, &s.schedule).unwrap();
        let cell = s.schedule.tasks().next().unwrap().1.path().cells()[1];
        let mut faults = pdw_biochip::FaultSet::new();
        faults.block_cell(cell);
        let faulted = s.chip.with_faults(faults).unwrap();
        let err = validate(&faulted, &bench.graph, &s.schedule).unwrap_err();
        assert!(matches!(err, SimError::BadPath { .. }), "got {err:?}");
    }

    #[test]
    fn detects_missing_op() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut bad = pdw_sched::Schedule::new();
        for t in s.schedule.tasks().map(|(_, t)| t.clone()) {
            bad.push_task(t);
        }
        assert_eq!(
            validate(&s.chip, &bench.graph, &bad),
            Err(SimError::OpCountMismatch)
        );
    }
}
