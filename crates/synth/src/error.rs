//! Error type for the synthesis flow.

use std::fmt;

use pdw_assay::OpId;
use pdw_biochip::ChipError;

/// Errors raised by layout generation or scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// The device library does not fit on the requested grid.
    GridTooSmall {
        /// Devices requested.
        devices: usize,
        /// Devices that fit.
        capacity: usize,
    },
    /// A chip-construction step failed.
    Chip(ChipError),
    /// No flow path could be routed for a task of operation `op`.
    Unroutable {
        /// The operation whose task failed to route.
        op: OpId,
        /// Which task failed ("injection", "transport", "excess removal",
        /// "output removal").
        what: &'static str,
    },
    /// Scheduling deadlocked: every ready operation is blocked by a device
    /// holding an unconsumed result, and early delivery into pre-bound
    /// consumer devices could not break the cycle. This arises when a
    /// device kind is heavily chained through a single instance (e.g. three
    /// dependent mix operations and one mixer); provision more devices of
    /// the contended kind. Parking results in storage devices (the
    /// distributed-channel-storage architecture of TC'22 \[10\]) would lift
    /// the limitation and is left as future work.
    Deadlock {
        /// Operations that were never scheduled.
        unscheduled: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::GridTooSmall { devices, capacity } => write!(
                f,
                "grid fits only {capacity} devices but the library has {devices}"
            ),
            SynthError::Chip(e) => write!(f, "chip construction failed: {e}"),
            SynthError::Unroutable { op, what } => {
                write!(f, "no route for the {what} task of {op}")
            }
            SynthError::Deadlock { unscheduled } => write!(
                f,
                "scheduling deadlocked with {unscheduled} operations unscheduled; \
                 enlarge the device library"
            ),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for SynthError {
    fn from(e: ChipError) -> Self {
        SynthError::Chip(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        let e = SynthError::GridTooSmall {
            devices: 18,
            capacity: 12,
        };
        assert!(e.to_string().contains("18"));
        let e = SynthError::Deadlock { unscheduled: 3 };
        assert!(e.to_string().contains("enlarge"));
    }
}
