//! Chip layout generation: corridor mesh, device placement, port placement.
//!
//! The layout mirrors the chips of the PathDriver papers (Fig. 2(a)): a
//! rectangular virtual grid whose channels form a corridor mesh (every cell
//! is etched except isolated "pillar" cells at odd/odd coordinates), devices
//! placed inline in the mesh, flow ports on the west/north boundary, and
//! waste ports on the east/south boundary. Every device end and every port
//! is reachable through the mesh, so the scheduler can always search
//! complete `[flow port → … → waste port]` paths.

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::OpKind;
use pdw_biochip::{Chip, ChipBuilder, Coord, DeviceKind};

use crate::error::SynthError;

/// Maps an operation kind to the device kind that executes it.
pub fn device_kind_for(op: OpKind) -> DeviceKind {
    match op {
        OpKind::Mix => DeviceKind::Mixer,
        OpKind::Heat => DeviceKind::Heater,
        OpKind::Detect => DeviceKind::Detector,
        OpKind::Filter => DeviceKind::Filter,
        OpKind::Separate => DeviceKind::Separator,
        OpKind::Store => DeviceKind::Storage,
    }
}

/// Anchor coordinates available for 3-cell devices on a `width × height`
/// grid.
///
/// Devices sit on even corridor rows with an **odd** anchor column, so the
/// cells adjacent to both device ends are mesh junctions (even/even
/// coordinates, degree ≥ 3). This matters for excess-fluid removal: the
/// cached excess right at a device's ends must be flushable by a path that
/// does *not* cross the (occupied) device, which requires those cells to
/// have a way around it.
pub fn device_slots(width: u16, height: u16) -> Vec<Coord> {
    let mut slots = Vec::new();
    let mut y = 2;
    while y + 2 < height {
        let mut x = 3;
        // Keep both end junctions strictly interior: a junction on the
        // boundary could coincide with (or be cut off by) a port.
        while x + 4 < width {
            slots.push(Coord::new(x, y));
            x += 6;
        }
        y += 2;
    }
    slots
}

/// Builds the chip for a benchmark: places `bench.devices` on the grid,
/// four flow ports (west/north) and four waste ports (east/south), and
/// etches the corridor mesh.
///
/// # Errors
///
/// Returns [`SynthError::GridTooSmall`] if the library does not fit, or a
/// wrapped [`ChipError`](pdw_biochip::ChipError) on placement conflicts.
pub fn build_chip(bench: &Benchmark) -> Result<Chip, SynthError> {
    let (width, height) = bench.grid;
    let slots = device_slots(width, height);
    if bench.devices.len() > slots.len() {
        return Err(SynthError::GridTooSmall {
            devices: bench.devices.len(),
            capacity: slots.len(),
        });
    }

    let builder = ChipBuilder::new(width, height);

    // Ports: even coordinates so the adjacent mesh cell is a channel.
    // Inlets and outlets are interleaved around the perimeter (as in the
    // paper's Fig. 2(a) chip) so every region of the mesh has both a nearby
    // pressure source and a nearby vent — complete port-to-port paths then
    // exist from any device to any device.
    let even = |v: u16| v & !1;
    let third = |len: u16, k: u16| even(even((len as u32 * k as u32 / 3) as u16).clamp(2, len - 3));
    let flow_ports = [
        Coord::new(0, third(height, 2)),
        Coord::new(third(width, 1), 0),
        Coord::new(width - 1, third(height, 1)),
        Coord::new(third(width, 2), height - 1),
    ];
    let waste_ports = [
        Coord::new(0, third(height, 1)),
        Coord::new(third(width, 2), 0),
        Coord::new(width - 1, third(height, 2)),
        Coord::new(third(width, 1), height - 1),
    ];
    let builder = builder_with_ports(builder, &flow_ports, &waste_ports)?;
    let anchors: Vec<Coord> = slots.into_iter().take(bench.devices.len()).collect();
    assemble(bench, builder, &flow_ports, &waste_ports, &anchors)
}

/// Builds a *banded* chip for a benchmark: one flow port on the north edge
/// and one waste port on the south edge per vertical band, with devices
/// spread evenly over the whole slot grid instead of packed top-first.
///
/// This is the layout of the `mega` instance family: every column band of
/// the chip owns a complete port pair, so a vertical
/// [`partition`](pdw_biochip::partition) cut leaves each region able to
/// route complete `[flow port → … → waste port]` wash paths on its own.
/// `bands` is clamped to what the grid width can carry.
///
/// # Errors
///
/// Returns [`SynthError::GridTooSmall`] if the library does not fit, or a
/// wrapped [`ChipError`](pdw_biochip::ChipError) on placement conflicts.
pub fn build_chip_banded(bench: &Benchmark, bands: u16) -> Result<Chip, SynthError> {
    let (width, height) = bench.grid;
    let slots = device_slots(width, height);
    if bench.devices.len() > slots.len() {
        return Err(SynthError::GridTooSmall {
            devices: bench.devices.len(),
            capacity: slots.len(),
        });
    }

    let builder = ChipBuilder::new(width, height);

    // One port pair per band, at the band's center column (even, so the
    // mesh cell inside the edge is a channel). Band centers sit ≥ 6 cells
    // apart after clamping, so the columns never collide.
    let bands = bands.clamp(1, (width / 6).max(1));
    let even = |v: u16| v & !1;
    let mut flow_ports = Vec::new();
    let mut waste_ports = Vec::new();
    for b in 0..bands {
        let center = (width as u32 * (2 * b as u32 + 1) / (2 * bands as u32)) as u16;
        let cx = even(center).clamp(2, even(width - 3));
        flow_ports.push(Coord::new(cx, 0));
        waste_ports.push(Coord::new(cx, height - 1));
    }

    // Devices: stride over the full slot list so every band gets its share
    // (the top-first packing of [`build_chip`] would strand lower bands
    // device-free on large grids).
    let n = bench.devices.len();
    let anchors: Vec<Coord> = (0..n).map(|i| slots[i * slots.len() / n.max(1)]).collect();
    let builder = builder_with_ports(builder, &flow_ports, &waste_ports)?;
    assemble(bench, builder, &flow_ports, &waste_ports, &anchors)
}

/// Adds the given ports to the builder (labels `in1…`, `out1…`).
fn builder_with_ports(
    mut builder: ChipBuilder,
    flow_ports: &[Coord],
    waste_ports: &[Coord],
) -> Result<ChipBuilder, SynthError> {
    for (i, &c) in flow_ports.iter().enumerate() {
        builder = builder.flow_port(&format!("in{}", i + 1), c)?;
    }
    for (i, &c) in waste_ports.iter().enumerate() {
        builder = builder.waste_port(&format!("out{}", i + 1), c)?;
    }
    Ok(builder)
}

/// Places the devices on `anchors`, etches the corridor mesh, and builds.
fn assemble(
    bench: &Benchmark,
    mut builder: ChipBuilder,
    flow_ports: &[Coord],
    waste_ports: &[Coord],
    anchors: &[Coord],
) -> Result<Chip, SynthError> {
    let (width, height) = bench.grid;

    // Devices: 3-cell horizontal footprints on the chosen anchors.
    let mut claimed: std::collections::HashSet<Coord> = flow_ports
        .iter()
        .chain(waste_ports.iter())
        .copied()
        .collect();
    let mut kind_counts = std::collections::HashMap::new();
    for (&op_kind, &anchor) in bench.devices.iter().zip(anchors) {
        let kind = device_kind_for(op_kind);
        let n = kind_counts.entry(kind).or_insert(0u32);
        *n += 1;
        let label = format!("{}{}", kind.name(), n);
        let end = Coord::new(anchor.x + 2, anchor.y);
        builder = builder.device(kind, &label, anchor, end)?;
        claimed.insert(anchor);
        claimed.insert(Coord::new(anchor.x + 1, anchor.y));
        claimed.insert(end);
    }

    // Corridor mesh: etch all unclaimed cells except odd/odd pillars.
    for y in 0..height {
        for x in 0..width {
            if x % 2 == 1 && y % 2 == 1 {
                continue;
            }
            let c = Coord::new(x, y);
            if !claimed.contains(&c) {
                builder = builder.channel(c)?;
            }
        }
    }

    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_biochip::CellKind;

    #[test]
    fn op_kinds_map_one_to_one() {
        use OpKind::*;
        let kinds: std::collections::HashSet<_> = [Mix, Heat, Detect, Filter, Separate, Store]
            .into_iter()
            .map(device_kind_for)
            .collect();
        assert_eq!(kinds.len(), 6);
    }

    #[test]
    fn slots_fit_expected_counts() {
        assert!(device_slots(13, 13).len() >= 5);
        assert!(device_slots(15, 15).len() >= 9);
        assert!(device_slots(17, 17).len() >= 12);
        assert!(device_slots(21, 21).len() >= 18);
    }

    #[test]
    fn device_end_neighbors_are_junctions() {
        // Both cells adjacent to a device's ends must have even/even
        // coordinates (mesh junctions), so excess flushes can route around
        // the occupied device.
        for slot in device_slots(15, 15) {
            let before = Coord::new(slot.x - 1, slot.y);
            let after = Coord::new(slot.x + 3, slot.y);
            assert_eq!(before.x % 2, 0, "{before} not a junction");
            assert_eq!(before.y % 2, 0);
            assert_eq!(after.x % 2, 0, "{after} not a junction");
        }
    }

    #[test]
    fn demo_chip_builds_with_all_parts() {
        let chip = build_chip(&benchmarks::demo()).unwrap();
        assert_eq!(chip.devices().len(), 5);
        assert_eq!(chip.flow_ports().len(), 4);
        assert_eq!(chip.waste_ports().len(), 4);
    }

    #[test]
    fn every_port_reaches_every_port() {
        let chip = build_chip(&benchmarks::demo()).unwrap();
        for fp in chip.flow_ports() {
            for wp in chip.waste_ports() {
                assert!(chip.route(fp, wp, &[]).is_some(), "no route {fp} -> {wp}");
            }
        }
    }

    #[test]
    fn every_device_is_reachable() {
        let chip = build_chip(&benchmarks::suite()[2]).unwrap(); // ProteinSplit, 11 devices
        let fp = chip.flow_ports().next().unwrap();
        for d in chip.devices() {
            assert!(
                chip.route(fp, d.inlet_end(), &[]).is_some(),
                "device {} unreachable",
                d.label()
            );
        }
    }

    #[test]
    fn pillars_are_empty_everything_else_routable() {
        let chip = build_chip(&benchmarks::demo()).unwrap();
        let g = chip.grid();
        for c in g.coords() {
            let pillar = c.x % 2 == 1 && c.y % 2 == 1;
            if pillar {
                assert!(
                    matches!(g.kind(c), CellKind::Empty | CellKind::Device(_)),
                    "pillar {c} should be empty or device"
                );
            } else {
                assert!(g.kind(c).is_routable(), "cell {c} should be routable");
            }
        }
    }

    #[test]
    fn banded_chip_gives_every_band_a_port_pair_and_devices() {
        let mut bench = benchmarks::demo();
        bench.grid = (41, 21);
        let bands = 4u16;
        let chip = build_chip_banded(&bench, bands).unwrap();
        assert_eq!(chip.flow_ports().len(), bands as usize);
        assert_eq!(chip.waste_ports().len(), bands as usize);
        let band_of = |c: Coord| (c.x as u32 * bands as u32 / 41) as u16;
        // One flow port on the north edge and one waste port on the south
        // edge per band.
        for b in 0..bands {
            assert_eq!(chip.flow_ports().filter(|&c| band_of(c) == b).count(), 1);
            assert_eq!(chip.waste_ports().filter(|&c| band_of(c) == b).count(), 1);
        }
        // Devices spread: the strided assignment must not pack all five
        // into the top band of rows.
        let rows: std::collections::HashSet<u16> =
            chip.devices().iter().map(|d| d.footprint()[0].y).collect();
        assert!(rows.len() > 1, "devices all landed on one row");
        // Complete port-to-port paths still exist everywhere.
        for fp in chip.flow_ports() {
            for wp in chip.waste_ports() {
                assert!(chip.route(fp, wp, &[]).is_some(), "no route {fp} -> {wp}");
            }
        }
    }

    #[test]
    fn banded_band_count_is_clamped_to_the_grid() {
        let mut bench = benchmarks::demo();
        bench.grid = (15, 15);
        let chip = build_chip_banded(&bench, 64).unwrap();
        assert!(chip.flow_ports().len() <= 2);
        assert_eq!(chip.flow_ports().len(), chip.waste_ports().len());
    }

    #[test]
    fn too_many_devices_is_reported() {
        let mut bench = benchmarks::demo();
        bench.grid = (7, 7);
        bench.devices = vec![pdw_assay::OpKind::Mix; 20];
        assert!(matches!(
            build_chip(&bench),
            Err(SynthError::GridTooSmall { .. })
        ));
    }

    #[test]
    fn all_suite_chips_build() {
        for bench in benchmarks::suite() {
            let chip = build_chip(&bench).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert_eq!(chip.devices().len(), bench.devices.len());
        }
    }
}
