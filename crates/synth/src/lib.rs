//! PathDriver-style architectural synthesis for continuous-flow biochips.
//!
//! The PathDriver-Wash paper consumes the outputs of the (closed-source)
//! PathDriver+ synthesis flow: a chip layout and an assay schedule with
//! complete flow paths for every fluidic task. This crate reproduces that
//! flow:
//!
//! 1. **Layout** ([`layout`]): the device library is placed on a virtual
//!    grid etched with a corridor mesh; flow ports and waste ports are
//!    spread along the boundary.
//! 2. **Binding & scheduling** ([`schedule`]): operations are bound to
//!    devices and list-scheduled; every fluid movement becomes a
//!    [`Task`](pdw_sched::Task) with a complete `[flow port → … → waste
//!    port]` path — reagent injections, result transports (`p_{j,i,1}`),
//!    excess-fluid removals (`p_{j,i,2}`), and output removals.
//!
//! The result is a wash-free [`Schedule`](pdw_sched::Schedule) — exactly the
//! "given scheduling" both wash optimizers start from.
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), pdw_synth::SynthError> {
//! let bench = benchmarks::demo();
//! let synthesis = synthesize(&bench)?;
//! assert_eq!(synthesis.chip.devices().len(), 5);
//! assert!(synthesis.schedule.makespan() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod layout;
mod reservations;
pub mod schedule;

pub use error::SynthError;
pub use layout::{build_chip, build_chip_banded, device_kind_for, device_slots};
pub use schedule::{
    blocked_footprints, excess_cells, flow_duration, route_flush, route_task, route_task_from,
    synthesize_on, Synthesis, CELLS_PER_SECOND, EXCESS_SPAN,
};

use pdw_assay::benchmarks::Benchmark;

/// Runs the full synthesis flow: layout then binding/scheduling.
///
/// # Errors
///
/// Returns [`SynthError`] if the device library does not fit the grid or a
/// required flow path cannot be routed.
pub fn synthesize(bench: &Benchmark) -> Result<Synthesis, SynthError> {
    let chip = build_chip(bench)?;
    synthesize_on(bench, chip)
}
