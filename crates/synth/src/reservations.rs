//! Cell/time reservation bookkeeping for the list scheduler.

use std::collections::HashSet;

use pdw_biochip::Coord;
use pdw_sched::Time;

/// Identifier of a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResId(usize);

#[derive(Debug)]
struct Entry {
    cells: HashSet<Coord>,
    start: Time,
    /// `None` while open-ended (a device holding a resident fluid).
    end: Option<Time>,
}

/// A set of cell/time reservations with earliest-fit queries.
#[derive(Debug, Default)]
pub(crate) struct Reservations {
    entries: Vec<Entry>,
}

impl Reservations {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `cells` for `[start, end)`.
    pub fn add(&mut self, cells: impl IntoIterator<Item = Coord>, start: Time, end: Time) -> ResId {
        debug_assert!(end >= start);
        let id = ResId(self.entries.len());
        self.entries.push(Entry {
            cells: cells.into_iter().collect(),
            start,
            end: Some(end),
        });
        id
    }

    /// Reserves `cells` from `start` with no end (closed later via
    /// [`close`](Self::close)).
    pub fn add_open(&mut self, cells: impl IntoIterator<Item = Coord>, start: Time) -> ResId {
        let id = ResId(self.entries.len());
        self.entries.push(Entry {
            cells: cells.into_iter().collect(),
            start,
            end: None,
        });
        id
    }

    /// Closes an open reservation at `end`.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is already closed.
    pub fn close(&mut self, id: ResId, end: Time) {
        let e = &mut self.entries[id.0];
        assert!(e.end.is_none(), "reservation closed twice");
        e.end = Some(end.max(e.start));
    }

    /// Earliest time from which `cells` are free of every reservation not in
    /// `ignore`, forever. Open reservations must be ignored by the caller
    /// (they belong to the caller's own device residency); a foreign open
    /// reservation yields `None`.
    pub fn free_from(
        &self,
        cells: impl IntoIterator<Item = Coord>,
        ignore: &[ResId],
    ) -> Option<Time> {
        let cells: HashSet<Coord> = cells.into_iter().collect();
        let mut t = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if ignore.contains(&ResId(i)) || e.cells.is_disjoint(&cells) {
                continue;
            }
            match e.end {
                Some(end) => t = t.max(end),
                None => return None,
            }
        }
        Some(t)
    }

    fn conflicts(&self, idx: usize, cells: &HashSet<Coord>, t: Time, dur: Time) -> bool {
        let e = &self.entries[idx];
        let time_overlap = match e.end {
            Some(end) => t < end && e.start < t + dur,
            None => e.start < t + dur,
        };
        time_overlap && !e.cells.is_disjoint(cells)
    }

    /// Earliest `t ≥ ready` such that `cells` are free for `[t, t + dur)`,
    /// ignoring the reservations in `ignore` (the caller's own device
    /// residencies). Returns `None` if an open reservation blocks forever.
    pub fn earliest_fit(
        &self,
        cells: impl IntoIterator<Item = Coord>,
        ready: Time,
        dur: Time,
        ignore: &[ResId],
    ) -> Option<Time> {
        let cells: HashSet<Coord> = cells.into_iter().collect();
        let relevant: Vec<usize> = (0..self.entries.len())
            .filter(|i| !ignore.contains(&ResId(*i)))
            .filter(|&i| !self.entries[i].cells.is_disjoint(&cells))
            .collect();

        // Candidate start times: `ready` and the end of every relevant entry.
        let mut candidates: Vec<Time> = vec![ready];
        for &i in &relevant {
            if let Some(end) = self.entries[i].end {
                if end > ready {
                    candidates.push(end);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        'outer: for &t in &candidates {
            for &i in &relevant {
                if self.conflicts(i, &cells, t, dur) {
                    continue 'outer;
                }
            }
            return Some(t);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells(xs: &[u16]) -> Vec<Coord> {
        xs.iter().map(|&x| Coord::new(x, 0)).collect()
    }

    #[test]
    fn earliest_fit_skips_busy_windows() {
        let mut r = Reservations::new();
        r.add(cells(&[1, 2]), 5, 10);
        // Disjoint cells: immediate.
        assert_eq!(r.earliest_fit(cells(&[3]), 0, 4, &[]), Some(0));
        // Same cells before the window: fits at 0 (0+4 <= 5).
        assert_eq!(r.earliest_fit(cells(&[1]), 0, 5, &[]), Some(0));
        // Too long to fit before: pushed to the end of the window.
        assert_eq!(r.earliest_fit(cells(&[1]), 0, 6, &[]), Some(10));
        // Ready inside the window: pushed to its end.
        assert_eq!(r.earliest_fit(cells(&[2]), 7, 1, &[]), Some(10));
    }

    #[test]
    fn open_reservations_block_forever() {
        let mut r = Reservations::new();
        let id = r.add_open(cells(&[4]), 8);
        // Fits strictly before the open start.
        assert_eq!(r.earliest_fit(cells(&[4]), 0, 8, &[]), Some(0));
        // Cannot fit after it.
        assert_eq!(r.earliest_fit(cells(&[4]), 5, 4, &[]), None);
        // Unless the caller owns it.
        assert_eq!(r.earliest_fit(cells(&[4]), 5, 4, &[id]), Some(5));
        // Closing it unblocks.
        r.close(id, 12);
        assert_eq!(r.earliest_fit(cells(&[4]), 5, 4, &[]), Some(12));
    }

    #[test]
    fn multiple_windows_are_threaded() {
        let mut r = Reservations::new();
        r.add(cells(&[0]), 0, 3);
        r.add(cells(&[0]), 4, 8);
        // A 1-second task fits in the gap [3,4).
        assert_eq!(r.earliest_fit(cells(&[0]), 0, 1, &[]), Some(3));
        // A 2-second task must wait for the second window to end.
        assert_eq!(r.earliest_fit(cells(&[0]), 0, 2, &[]), Some(8));
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn double_close_panics() {
        let mut r = Reservations::new();
        let id = r.add_open(cells(&[0]), 0);
        r.close(id, 1);
        r.close(id, 2);
    }
}
