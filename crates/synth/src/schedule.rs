//! Binding and list scheduling: from a sequencing graph to a full schedule
//! with routed flow paths.

use std::collections::HashMap;

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::{AssayGraph, FluidType, OpId, OpInput};
use pdw_biochip::{Chip, Coord, DeviceId, DeviceKind, FlowPath};
pub use pdw_sched::{flow_duration, CELLS_PER_SECOND};
use pdw_sched::{Schedule, ScheduledOp, Task, TaskKind, Time};

use crate::error::SynthError;
use crate::layout::device_kind_for;
use crate::reservations::{ResId, Reservations};

/// How many cells on each side of a device cache excess fluid after a
/// delivery (the `p_{j,i,2}` targets). The layout guarantees the cell right
/// at each device end is a mesh junction, so a span of 1 is always
/// flushable around the device.
pub const EXCESS_SPAN: usize = 1;

/// The output of the synthesis flow.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Synthesis {
    /// The chip architecture the schedule runs on.
    pub chip: Chip,
    /// The wash-free schedule (operations + fluidic tasks).
    pub schedule: Schedule,
    /// Device bound to each operation, indexed by [`OpId`].
    pub binding: Vec<DeviceId>,
    /// Flow-port coordinate assigned to each reagent, indexed by
    /// [`ReagentId`](pdw_assay::ReagentId).
    pub reagent_ports: Vec<Coord>,
}

/// Routes a complete `[flow port → via… → waste port]` path visiting `via`
/// in order, avoiding `blocked` cells. Tries every port pair and returns the
/// shortest result.
pub fn route_task(chip: &Chip, via: &[Coord], blocked: &[Coord]) -> Option<FlowPath> {
    let mut best: Option<Vec<Coord>> = None;
    for fp in chip.flow_ports() {
        for wp in chip.waste_ports() {
            if let Some(p) = chip.route_via(fp, via, wp, blocked) {
                if best.as_ref().is_none_or(|b| p.len() < b.len()) {
                    best = Some(p);
                }
            }
        }
    }
    best.map(|cells| FlowPath::new(cells).expect("route_via returns a simple path"))
}

/// Like [`route_task`] but with a fixed entry flow port (reagent injections
/// must start at the port plumbed to that reagent's reservoir).
pub fn route_task_from(
    chip: &Chip,
    from: Coord,
    via: &[Coord],
    blocked: &[Coord],
) -> Option<FlowPath> {
    let mut best: Option<Vec<Coord>> = None;
    for wp in chip.waste_ports() {
        if let Some(p) = chip.route_via(from, via, wp, blocked) {
            if best.as_ref().is_none_or(|b| p.len() < b.len()) {
                best = Some(p);
            }
        }
    }
    best.map(|cells| FlowPath::new(cells).expect("route_via returns a simple path"))
}

/// Routes a flush path covering all `targets` (order chosen by the router),
/// avoiding `blocked` cells. Used for excess removals and as the building
/// block for wash paths.
pub fn route_flush(chip: &Chip, targets: &[Coord], blocked: &[Coord]) -> Option<FlowPath> {
    let mut best: Option<Vec<Coord>> = None;
    for fp in chip.flow_ports() {
        // Visit targets near-to-far from the entry port.
        let mut ordered = targets.to_vec();
        ordered.sort_by_key(|c| (c.manhattan(fp), *c));
        for wp in chip.waste_ports() {
            if let Some(p) = chip.route_via(fp, &ordered, wp, blocked) {
                if best.as_ref().is_none_or(|b| p.len() < b.len()) {
                    best = Some(p);
                }
            }
        }
    }
    best.map(|cells| FlowPath::new(cells).expect("route_via returns a simple path"))
}

/// All device footprint cells except those of `allowed` devices.
pub fn blocked_footprints(chip: &Chip, allowed: &[DeviceId]) -> Vec<Coord> {
    chip.devices()
        .iter()
        .filter(|d| !allowed.contains(&d.id()))
        .flat_map(|d| d.footprint().iter().copied())
        .collect()
}

/// Cells of `path` holding excess fluid after a delivery into `device_cells`,
/// grouped by device side: up to [`EXCESS_SPAN`] path cells before and after
/// the device, excluding the end ports.
pub fn excess_groups(path: &FlowPath, device_cells: &[Coord]) -> (Vec<Coord>, Vec<Coord>) {
    let cells = path.cells();
    let first = cells.iter().position(|c| device_cells.contains(c));
    let last = cells.iter().rposition(|c| device_cells.contains(c));
    let (Some(first), Some(last)) = (first, last) else {
        return (Vec::new(), Vec::new());
    };
    // Before the device (never index 0, the flow port).
    let lo = first.saturating_sub(EXCESS_SPAN).max(1);
    let before = cells[lo..first].to_vec();
    // After the device (never the final waste port).
    let hi = (last + 1 + EXCESS_SPAN).min(cells.len() - 1);
    let after = cells[last + 1..hi].to_vec();
    (before, after)
}

/// Flat list of excess cells (both sides of [`excess_groups`]).
pub fn excess_cells(path: &FlowPath, device_cells: &[Coord]) -> Vec<Coord> {
    let (mut before, after) = excess_groups(path, device_cells);
    before.extend(after);
    before
}

#[derive(Debug, Clone, Copy)]
struct DevState {
    free_at: Time,
    /// Open footprint reservation while a result sits in the device.
    open: Option<ResId>,
    /// The operation whose result currently sits in the device.
    resident_for: Option<OpId>,
    /// Operation whose inputs are being loaded early (deadlock breaking):
    /// the device is spoken for until that operation executes on it.
    pinned_for: Option<OpId>,
}

/// Loading state of an operation whose device was bound early so a blocking
/// resident result could be delivered into it ahead of schedule.
#[derive(Debug, Clone)]
struct PreBind {
    device: DeviceId,
    my_res: ResId,
    prev_delivery_end: Time,
    ready_for_op: Time,
    delivered: Vec<OpId>,
}

#[derive(Debug, Clone, Copy)]
struct Done {
    device: DeviceId,
    end: Time,
}

/// Binds and schedules `bench` on an already-built `chip`.
///
/// Operations are scheduled by list scheduling with downstream-critical-path
/// priority; every fluid movement becomes a conflict-free task with a
/// complete routed flow path.
///
/// # Errors
///
/// Returns [`SynthError::Unroutable`] when a needed flow path does not exist
/// on the chip and [`SynthError::Deadlock`] when every ready operation is
/// blocked by devices holding unconsumed results.
pub fn synthesize_on(bench: &Benchmark, chip: Chip) -> Result<Synthesis, SynthError> {
    // List scheduling can deadlock when every ready operation needs a device
    // that holds a result whose consumer is not ready yet. Retry with
    // orderings that prefer freeing devices before claiming new ones.
    let mut last = None;
    for order in [
        ReadyOrder::Priority,
        ReadyOrder::ConsumersFirst,
        ReadyOrder::Topological,
    ] {
        match synthesize_ordered(bench, chip.clone(), order) {
            Ok(s) => return Ok(s),
            Err(e @ SynthError::Deadlock { .. }) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

/// Tie-breaking policy for picking among ready operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadyOrder {
    /// Downstream-critical-path priority (the default).
    Priority,
    /// Operations that consume a currently-resident result first (frees
    /// devices; avoids most residency deadlocks), then priority.
    ConsumersFirst,
    /// Plain topological index order.
    Topological,
}

fn synthesize_ordered(
    bench: &Benchmark,
    chip: Chip,
    order: ReadyOrder,
) -> Result<Synthesis, SynthError> {
    let graph = &bench.graph;
    let n_ops = graph.ops().len();

    // Devices grouped by kind.
    let mut by_kind: HashMap<DeviceKind, Vec<DeviceId>> = HashMap::new();
    for d in chip.devices() {
        by_kind.entry(d.kind()).or_default().push(d.id());
    }

    // Reagents are assigned flow ports round-robin.
    let fports: Vec<Coord> = chip.flow_ports().collect();
    let reagent_ports: Vec<Coord> = (0..graph.reagents().len())
        .map(|r| fports[r % fports.len()])
        .collect();

    let priority = downstream_priority(graph);

    let mut res = Reservations::new();
    let mut schedule = Schedule::new();
    let mut dev: Vec<DevState> = chip
        .devices()
        .iter()
        .map(|_| DevState {
            free_at: 0,
            open: None,
            resident_for: None,
            pinned_for: None,
        })
        .collect();
    let mut done: Vec<Option<Done>> = vec![None; n_ops];
    let mut binding: Vec<Option<DeviceId>> = vec![None; n_ops];
    let mut pre: Vec<Option<PreBind>> = vec![None; n_ops];

    let mut unscheduled: Vec<OpId> = graph.op_ids().collect();
    while !unscheduled.is_empty() {
        // Ready: all parent results computed.
        let mut ready: Vec<OpId> = unscheduled
            .iter()
            .copied()
            .filter(|&i| {
                graph
                    .op(i)
                    .parent_ops()
                    .all(|p| done[p.0 as usize].is_some())
            })
            .collect();
        match order {
            ReadyOrder::Priority => {
                ready.sort_by_key(|&i| (std::cmp::Reverse(priority[i.0 as usize]), i));
            }
            ReadyOrder::ConsumersFirst => {
                let consumes_resident = |i: OpId| {
                    graph
                        .op(i)
                        .parent_ops()
                        .any(|p| dev.iter().any(|d| d.resident_for == Some(p)))
                };
                ready.sort_by_key(|&i| {
                    (
                        std::cmp::Reverse(consumes_resident(i) as u8),
                        std::cmp::Reverse(priority[i.0 as usize]),
                        i,
                    )
                });
            }
            ReadyOrder::Topological => ready.sort(),
        }

        let mut scheduled_one = false;
        for &i in &ready {
            // Pre-bound operations must run on their pre-loaded device.
            let d = if let Some(p) = &pre[i.0 as usize] {
                Some(p.device)
            } else {
                let kind = device_kind_for(graph.op(i).kind());
                let candidates = by_kind.get(&kind).cloned().unwrap_or_default();
                // A device is eligible if idle and unpinned, or if its
                // resident fluid is one of this operation's own inputs
                // (mixer-chain reuse).
                let mut eligible: Vec<DeviceId> = candidates
                    .iter()
                    .copied()
                    .filter(|&d| dev[d.0 as usize].pinned_for.is_none())
                    .filter(|&d| match dev[d.0 as usize].resident_for {
                        None => true,
                        Some(r) => graph.op(i).parent_ops().any(|p| p == r),
                    })
                    .collect();
                eligible.sort_by_key(|&d| (dev[d.0 as usize].free_at, d));
                eligible.first().copied()
            };
            let Some(d) = d else {
                continue;
            };
            schedule_op(
                graph,
                &chip,
                &reagent_ports,
                i,
                d,
                pre[i.0 as usize].take(),
                &mut res,
                &mut schedule,
                &mut dev,
                &mut done,
            )?;
            dev[d.0 as usize].pinned_for = None;
            binding[i.0 as usize] = Some(d);
            unscheduled.retain(|&o| o != i);
            scheduled_one = true;
            break;
        }
        if !scheduled_one {
            // Residency deadlock: every ready operation needs a device that
            // holds a result whose consumer is not ready. Break it by
            // pre-binding such a consumer's device and delivering the
            // blocking result into it early (plugs queue in the device) —
            // the holder is freed for the ready operations.
            let mut broke = false;
            'residents: for dj in 0..dev.len() {
                let Some(j) = dev[dj].resident_for else {
                    continue;
                };
                let Some(c) = graph.consumer_of(j) else {
                    continue;
                };
                if done[c.0 as usize].is_some() {
                    continue;
                }
                if let Some(p) = &pre[c.0 as usize] {
                    if p.delivered.contains(&j) {
                        continue;
                    }
                }
                // Fix the consumer's device now (or reuse its pre-binding).
                let cd = match &pre[c.0 as usize] {
                    Some(p) => p.device,
                    None => {
                        let kind = device_kind_for(graph.op(c).kind());
                        let mut options: Vec<DeviceId> = by_kind
                            .get(&kind)
                            .cloned()
                            .unwrap_or_default()
                            .into_iter()
                            .filter(|&d| {
                                dev[d.0 as usize].resident_for.is_none()
                                    && dev[d.0 as usize].pinned_for.is_none()
                            })
                            .collect();
                        options.sort_by_key(|&d| (dev[d.0 as usize].free_at, d));
                        match options.first() {
                            Some(&d) => d,
                            None => continue 'residents,
                        }
                    }
                };
                let slot = graph
                    .op(c)
                    .inputs()
                    .iter()
                    .position(|&inp| inp == pdw_assay::OpInput::Op(j))
                    .expect("consumer consumes the resident");
                let foot: Vec<Coord> = chip.device(cd).footprint().to_vec();
                let (mut my_res, mut prev_end, mut ready_for) = match pre[c.0 as usize].take() {
                    Some(p) => (Some(p.my_res), p.prev_delivery_end, p.ready_for_op),
                    None => {
                        let start = dev[cd.0 as usize].free_at.max(
                            res.free_from(foot.iter().copied(), &[])
                                .expect("unpinned idle devices have no open reservation"),
                        );
                        (None, start, start)
                    }
                };
                let mut delivered = match &pre[c.0 as usize] {
                    Some(p) => p.delivered.clone(),
                    None => Vec::new(),
                };
                let removal_end = deliver_input(
                    graph,
                    &chip,
                    &reagent_ports,
                    c,
                    slot,
                    pdw_assay::OpInput::Op(j),
                    cd,
                    &mut res,
                    &mut schedule,
                    &mut dev,
                    &mut done,
                    &mut my_res,
                    &mut prev_end,
                )?;
                ready_for = ready_for.max(removal_end);
                delivered.push(j);
                dev[cd.0 as usize].pinned_for = Some(c);
                pre[c.0 as usize] = Some(PreBind {
                    device: cd,
                    my_res: my_res.expect("delivery opened the reservation"),
                    prev_delivery_end: prev_end,
                    ready_for_op: ready_for,
                    delivered,
                });
                broke = true;
                break;
            }
            if !broke {
                return Err(SynthError::Deadlock {
                    unscheduled: unscheduled.len(),
                });
            }
        }
    }

    Ok(Synthesis {
        chip,
        schedule,
        binding: binding
            .into_iter()
            .map(|b| b.expect("all ops bound"))
            .collect(),
        reagent_ports,
    })
}

/// All orientation combinations for passing through a sequence of devices:
/// each device's full footprint is visited cell-by-cell, inlet→outlet or
/// outlet→inlet.
fn through_orders(devices: &[&[Coord]]) -> Vec<Vec<Coord>> {
    let mut orders: Vec<Vec<Coord>> = vec![Vec::new()];
    for cells in devices {
        let mut next = Vec::new();
        for base in &orders {
            let forward = cells.to_vec();
            let mut backward = cells.to_vec();
            backward.reverse();
            for o in [forward, backward] {
                let mut v = base.clone();
                v.extend(o);
                next.push(v);
            }
        }
        orders = next;
    }
    orders
}

/// Delivers one input of operation `i` into device `d`: routes the complete
/// port-to-port flow path, reserves it at the earliest conflict-free time
/// (after any previous load into `d`), opens the destination-footprint
/// reservation on the first load, frees the parent's device, and schedules
/// the excess-fluid removal(s). Returns the time by which the delivery and
/// its removals are done.
#[allow(clippy::too_many_arguments)]
fn deliver_input(
    graph: &AssayGraph,
    chip: &Chip,
    reagent_ports: &[Coord],
    i: OpId,
    slot: usize,
    input: OpInput,
    d: DeviceId,
    res: &mut Reservations,
    schedule: &mut Schedule,
    dev: &mut [DevState],
    done: &mut [Option<Done>],
    my_res: &mut Option<ResId>,
    prev_delivery_end: &mut Time,
) -> Result<Time, SynthError> {
    let device = chip.device(d);
    let foot: Vec<Coord> = device.footprint().to_vec();
    let dst = device.footprint();
    let (vias, ready, fluid, parent, kind): (
        Vec<Vec<Coord>>,
        Time,
        FluidType,
        Option<OpId>,
        TaskKind,
    ) = match input {
        OpInput::Reagent(r) => (
            through_orders(&[dst]),
            0,
            graph.reagent_fluid(r),
            None,
            TaskKind::Injection {
                reagent: r,
                op: i,
                slot,
            },
        ),
        OpInput::Op(j) => {
            let src = done[j.0 as usize].expect("parent is done");
            let sdev = chip.device(src.device);
            (
                through_orders(&[sdev.footprint(), dst]),
                src.end,
                graph.output_fluid(j),
                Some(j),
                TaskKind::Transport {
                    from_op: j,
                    to_op: i,
                },
            )
        }
    };

    // Route: other devices are obstacles; source and destination pass.
    let mut allowed = vec![d];
    if let Some(j) = parent {
        allowed.push(done[j.0 as usize].expect("parent is done").device);
    }
    let blocked = blocked_footprints(chip, &allowed);
    let mut path: Option<FlowPath> = None;
    for via in &vias {
        let candidate = match input {
            OpInput::Reagent(r) => {
                // Prefer the reagent's plumbed port; fall back to any
                // port (reservoir re-plumbing is a design-time choice).
                route_task_from(chip, reagent_ports[r.0 as usize], via, &blocked)
                    .or_else(|| route_task(chip, via, &blocked))
            }
            OpInput::Op(_) => route_task(chip, via, &blocked),
        };
        if let Some(p) = candidate {
            if path.as_ref().is_none_or(|b| p.len() < b.len()) {
                path = Some(p);
            }
        }
    }
    let path = path.ok_or(SynthError::Unroutable {
        op: i,
        what: if parent.is_some() {
            "transport"
        } else {
            "injection"
        },
    })?;
    let dur = flow_duration(path.len());

    let mut ignore: Vec<ResId> = my_res.iter().copied().collect();
    if let Some(j) = parent {
        let pd = done[j.0 as usize].expect("parent is done").device;
        ignore.extend(dev[pd.0 as usize].open);
    }
    let ready = ready.max(*prev_delivery_end);
    let start = res
        .earliest_fit(path.cells().iter().copied(), ready, dur, &ignore)
        .expect("closed reservations always leave a future slot");
    *prev_delivery_end = start + dur;
    res.add(path.cells().iter().copied(), start, start + dur);

    // Claim the destination footprint from the first delivery onward.
    if my_res.is_none() {
        *my_res = Some(res.add_open(foot.iter().copied(), start));
    }
    // Free the parent's device.
    if let Some(j) = parent {
        let pd = done[j.0 as usize].expect("parent is done").device;
        if let Some(open) = dev[pd.0 as usize].open.take() {
            res.close(open, start + dur);
        }
        dev[pd.0 as usize].resident_for = None;
        dev[pd.0 as usize].free_at = start + dur;
    }

    // Excess fluid removal (p_{j,i,2}) for this delivery: one flush covering
    // both device sides when a single simple path exists, otherwise one
    // flush per side.
    let (before, after) = excess_groups(&path, &foot);
    let mut removal_end = start + dur;
    if !(before.is_empty() && after.is_empty()) {
        let all_blocked = blocked_footprints(chip, &[]);
        let combined: Vec<Coord> = before.iter().chain(after.iter()).copied().collect();
        let groups: Vec<Vec<Coord>> = match route_flush(chip, &combined, &all_blocked) {
            Some(_) => vec![combined],
            None => [before, after]
                .into_iter()
                .filter(|g| !g.is_empty())
                .collect(),
        };
        for group in groups {
            let rpath = route_flush(chip, &group, &all_blocked).ok_or(SynthError::Unroutable {
                op: i,
                what: "excess removal",
            })?;
            let rdur = flow_duration(rpath.len());
            let rstart = res
                .earliest_fit(rpath.cells().iter().copied(), start + dur, rdur, &[])
                .expect("closed reservations always leave a future slot");
            res.add(rpath.cells().iter().copied(), rstart, rstart + rdur);
            schedule.push_task(Task::new(
                TaskKind::ExcessRemoval { op: i },
                rpath,
                rstart,
                rdur,
                fluid,
            ));
            removal_end = removal_end.max(rstart + rdur);
        }
    }

    schedule.push_task(Task::new(kind, path, start, dur, fluid));
    Ok(removal_end)
}

/// Sum of operation durations on the longest downstream chain, per op.
fn downstream_priority(graph: &AssayGraph) -> Vec<Time> {
    let mut prio = vec![0; graph.ops().len()];
    for i in graph.op_ids().collect::<Vec<_>>().into_iter().rev() {
        let own = graph.op(i).duration();
        let down = graph
            .consumer_of(i)
            .map(|c| prio[c.0 as usize])
            .unwrap_or(0);
        prio[i.0 as usize] = own + down;
    }
    prio
}

#[allow(clippy::too_many_arguments)]
fn schedule_op(
    graph: &AssayGraph,
    chip: &Chip,
    reagent_ports: &[Coord],
    i: OpId,
    d: DeviceId,
    pre: Option<PreBind>,
    res: &mut Reservations,
    schedule: &mut Schedule,
    dev: &mut [DevState],
    done: &mut [Option<Done>],
) -> Result<(), SynthError> {
    let op = graph.op(i);
    let device = chip.device(d);
    let foot: Vec<Coord> = device.footprint().to_vec();

    // The device may already hold one of our inputs (resident reuse), or
    // loading may already have begun (deadlock-breaking early delivery): in
    // both cases inherit the open reservation instead of creating one.
    let mut my_res: Option<ResId> = dev[d.0 as usize].open;
    let mut ready_for_op: Time = dev[d.0 as usize].free_at;
    if let Some(r) = dev[d.0 as usize].resident_for {
        ready_for_op = ready_for_op.max(done[r.0 as usize].expect("resident is done").end);
    }
    let pre_delivered: Vec<OpId> = pre
        .as_ref()
        .map(|p| p.delivered.clone())
        .unwrap_or_default();

    // Plugs are loaded into the device strictly one after another: once the
    // first plug is inside, a crossing flow would flush it out, so each
    // delivery must wait for the previous one. Loading cannot begin until
    // every already-booked use of the device footprint (earlier operations,
    // transports crossing the idle device) is over — the footprint must be
    // exclusively ours from first load to result pickup.
    let mut prev_delivery_end: Time = match &pre {
        Some(p) => {
            my_res = Some(p.my_res);
            ready_for_op = ready_for_op.max(p.ready_for_op);
            p.prev_delivery_end
        }
        None => {
            let inherited: Vec<ResId> = my_res.into_iter().collect();
            dev[d.0 as usize].free_at.max(
                res.free_from(foot.iter().copied(), &inherited)
                    .expect("devices with a foreign resident are never eligible"),
            )
        }
    };
    for (slot, &input) in op.inputs().iter().enumerate() {
        // Resident or pre-delivered inputs need no delivery.
        if let OpInput::Op(j) = input {
            if dev[d.0 as usize].resident_for == Some(j) || pre_delivered.contains(&j) {
                continue;
            }
        }

        let removal_end = deliver_input(
            graph,
            chip,
            reagent_ports,
            i,
            slot,
            input,
            d,
            res,
            schedule,
            dev,
            done,
            &mut my_res,
            &mut prev_delivery_end,
        )?;
        ready_for_op = ready_for_op.max(removal_end);
    }

    // If the op had only a resident input (no deliveries), the reservation
    // may still be missing (resident inherited): ensure one exists.
    let my_res = match my_res {
        Some(r) => r,
        None => res.add_open(foot.iter().copied(), ready_for_op),
    };

    // Execute the operation.
    let op_start = res
        .earliest_fit(foot.iter().copied(), ready_for_op, op.duration(), &[my_res])
        .expect("own reservation is ignored");
    let op_end = op_start + op.duration();
    schedule.push_op(ScheduledOp {
        op: i,
        device: d,
        start: op_start,
        duration: op.duration(),
    });
    done[i.0 as usize] = Some(Done {
        device: d,
        end: op_end,
    });

    if graph.consumer_of(i).is_some() {
        // Result stays resident until the consumer's transport picks it up.
        dev[d.0 as usize].open = Some(my_res);
        dev[d.0 as usize].resident_for = Some(i);
        dev[d.0 as usize].free_at = op_end;
    } else {
        // Sink: move the result off-chip.
        let blocked = blocked_footprints(chip, &[d]);
        let mut path: Option<FlowPath> = None;
        for via in through_orders(&[device.footprint()]) {
            if let Some(p) = route_task(chip, &via, &blocked) {
                if path.as_ref().is_none_or(|b| p.len() < b.len()) {
                    path = Some(p);
                }
            }
        }
        let path = path.ok_or(SynthError::Unroutable {
            op: i,
            what: "output removal",
        })?;
        let dur = flow_duration(path.len());
        let start = res
            .earliest_fit(path.cells().iter().copied(), op_end, dur, &[my_res])
            .expect("own reservation is ignored");
        res.add(path.cells().iter().copied(), start, start + dur);
        schedule.push_task(Task::new(
            TaskKind::OutputRemoval { op: i },
            path,
            start,
            dur,
            graph.output_fluid(i),
        ));
        res.close(my_res, start + dur);
        dev[d.0 as usize].open = None;
        dev[d.0 as usize].resident_for = None;
        dev[d.0 as usize].free_at = start + dur;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::build_chip;
    use pdw_assay::benchmarks;

    #[test]
    fn excess_cells_straddle_the_device() {
        // Path: p0 c1 c2 D3 D4 D5 c6 c7 p8 with device at indices 3-5.
        let cells: Vec<Coord> = (0..9).map(|x| Coord::new(x, 0)).collect();
        let path = FlowPath::new(cells.clone()).unwrap();
        let devc = [Coord::new(3, 0), Coord::new(4, 0), Coord::new(5, 0)];
        let ex = excess_cells(&path, &devc);
        assert_eq!(ex, vec![Coord::new(2, 0), Coord::new(6, 0)]);
    }

    #[test]
    fn excess_cells_never_include_ports() {
        // Device right next to both ports.
        let cells: Vec<Coord> = (0..4).map(|x| Coord::new(x, 0)).collect();
        let path = FlowPath::new(cells).unwrap();
        let devc = [Coord::new(1, 0), Coord::new(2, 0)];
        assert!(excess_cells(&path, &devc).is_empty());
    }

    #[test]
    fn demo_synthesizes_without_conflicts_in_time() {
        let bench = benchmarks::demo();
        let chip = build_chip(&bench).unwrap();
        let s = synthesize_on(&bench, chip).unwrap();
        assert_eq!(s.schedule.ops().len(), 7);
        // Every op scheduled after its parents.
        for (a, b) in bench.graph.dep_edges() {
            let pa = s.schedule.scheduled_op(a).unwrap();
            let pb = s.schedule.scheduled_op(b).unwrap();
            assert!(pa.end() <= pb.start, "{a} must precede {b}");
        }
    }

    #[test]
    fn whole_suite_synthesizes() {
        for bench in benchmarks::suite() {
            let s = synthesize(&bench).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert_eq!(s.schedule.ops().len(), bench.graph.ops().len());
            assert!(s.schedule.makespan() > 0);
        }
    }

    use crate::synthesize;

    #[test]
    fn no_two_overlapping_tasks_share_cells() {
        let s = synthesize(&benchmarks::demo()).unwrap();
        let ids = s.schedule.tasks_chronological();
        for (ai, &a) in ids.iter().enumerate() {
            for &b in &ids[ai + 1..] {
                let (ta, tb) = (s.schedule.task(a), s.schedule.task(b));
                assert!(
                    !ta.conflicts_with(tb),
                    "tasks {a} and {b} conflict: {ta} vs {tb}"
                );
            }
        }
    }

    #[test]
    fn deliveries_precede_their_operation() {
        let s = synthesize(&benchmarks::pcr()).unwrap();
        for (_, t) in s.schedule.tasks() {
            let op = match t.kind() {
                TaskKind::Injection { op, .. } => Some(*op),
                TaskKind::Transport { to_op, .. } => Some(*to_op),
                _ => None,
            };
            if let Some(op) = op {
                let so = s.schedule.scheduled_op(op).unwrap();
                assert!(
                    t.end() <= so.start,
                    "delivery {t} must finish before {op} starts at {}",
                    so.start
                );
            }
        }
    }
}
