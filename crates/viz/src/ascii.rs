//! ASCII rendering of schedules for terminals and logs.

use std::fmt::Write as _;

use pdw_sched::{Schedule, TaskKind, Time};

fn glyph(kind: &TaskKind) -> char {
    match kind {
        TaskKind::Injection { .. } => 'i',
        TaskKind::Transport { .. } => 't',
        TaskKind::ExcessRemoval { .. } => 'x',
        TaskKind::OutputRemoval { .. } => 'o',
        TaskKind::Wash { .. } => 'W',
    }
}

/// Renders a schedule as an ASCII Gantt chart at most `width` columns wide
/// (labels excluded). Operations are drawn with `#`, tasks with a letter per
/// kind (`i`njection, `t`ransport, e`x`cess, `o`utput, `W`ash).
///
/// # Example
///
/// ```
/// use pdw_sched::Schedule;
///
/// let empty = Schedule::new();
/// assert!(pdw_viz::ascii::gantt(&empty, 40).is_empty());
/// ```
pub fn gantt(schedule: &Schedule, width: usize) -> String {
    let makespan = schedule.makespan();
    if makespan == 0 {
        return String::new();
    }
    let width = width.max(10);
    // Seconds per column, rounded up so the chart always fits.
    let scale = (makespan as usize).div_ceil(width).max(1) as Time;
    let cols = (makespan as usize).div_ceil(scale as usize);

    let mut out = String::new();
    let line = |label: String, start: Time, dur: Time, ch: char, out: &mut String| {
        let from = (start / scale) as usize;
        let to = (((start + dur).div_ceil(scale)) as usize).clamp(from + 1, cols);
        let mut row = vec![' '; cols];
        for c in row.iter_mut().take(to).skip(from) {
            *c = ch;
        }
        let _ = writeln!(out, "{label:>14} |{}|", row.into_iter().collect::<String>());
    };

    let mut ops = schedule.ops().to_vec();
    ops.sort_by_key(|o| (o.start, o.op));
    for o in &ops {
        line(o.op.to_string(), o.start, o.duration, '#', &mut out);
    }
    for id in schedule.tasks_chronological() {
        let t = schedule.task(id);
        line(
            format!("{} {}", t.kind().tag(), id),
            t.start(),
            t.duration(),
            glyph(t.kind()),
            &mut out,
        );
    }
    let _ = writeln!(out, "{:>14}  0 .. {makespan} s ({} s/col)", "", scale);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn rows_cover_every_op_and_task() {
        let s = synthesize(&benchmarks::demo()).unwrap();
        let text = gantt(&s.schedule, 60);
        let rows = text.lines().count() - 1; // minus the scale footer
        assert_eq!(rows, s.schedule.ops().len() + s.schedule.task_count());
    }

    #[test]
    fn chart_fits_width() {
        let s = synthesize(&benchmarks::pcr()).unwrap();
        let text = gantt(&s.schedule, 50);
        for l in text.lines() {
            assert!(l.len() <= 14 + 2 + 50 + 30, "line too long: {}", l.len());
        }
    }

    #[test]
    fn washes_use_a_distinct_glyph() {
        assert_eq!(glyph(&TaskKind::Wash { targets: vec![] }), 'W');
        assert_eq!(
            glyph(&TaskKind::OutputRemoval {
                op: pdw_assay::OpId(0)
            }),
            'o'
        );
    }

    #[test]
    fn empty_schedule_renders_empty() {
        assert!(gantt(&Schedule::new(), 40).is_empty());
    }
}
