//! Contamination heatmap: how often each cell gets dirty.

use std::collections::HashMap;
use std::fmt::Write as _;

use pdw_biochip::{Chip, Coord};

/// Pixel size of one grid cell.
const CELL_PX: u32 = 24;

/// Renders an SVG heatmap of per-cell contamination counts (e.g. from
/// [`pdw_contam::replay`]'s events): white = never contaminated, deep red =
/// the hottest cell. Ports and empty cells stay uncolored.
///
/// The caller supplies `(cell, count)` pairs; duplicate cells accumulate.
///
/// [`pdw_contam::replay`]: https://docs.rs/pdw-contam
pub fn contamination(chip: &Chip, counts: impl IntoIterator<Item = (Coord, usize)>) -> String {
    let mut per_cell: HashMap<Coord, usize> = HashMap::new();
    for (c, n) in counts {
        *per_cell.entry(c).or_insert(0) += n;
    }
    let hottest = per_cell.values().copied().max().unwrap_or(0).max(1);

    let g = chip.grid();
    let (w, h) = (g.width() as u32 * CELL_PX, g.height() as u32 * CELL_PX);
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    for c in g.coords() {
        if !g.kind(c).is_routable() {
            continue;
        }
        let (x, y) = (c.x as u32 * CELL_PX, c.y as u32 * CELL_PX);
        let n = per_cell.get(&c).copied().unwrap_or(0);
        let heat = n as f64 / hottest as f64;
        // White → red ramp.
        let gb = (255.0 * (1.0 - heat)) as u8;
        let _ = write!(
            out,
            r##"<rect x="{x}" y="{y}" width="{CELL_PX}" height="{CELL_PX}" fill="rgb(255,{gb},{gb})" stroke="#ccc" stroke-width="0.5"/>"##
        );
        if n > 0 {
            let _ = write!(
                out,
                r#"<text x="{}" y="{}" font-size="8" font-family="sans-serif" text-anchor="middle">{n}</text>"#,
                x + CELL_PX / 2,
                y + CELL_PX / 2 + 3
            );
        }
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn renders_counts_for_contaminated_cells() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let svg = contamination(&s.chip, [(Coord::new(2, 2), 3), (Coord::new(2, 2), 2)]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains(">5</text>"), "accumulated count missing");
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn empty_counts_render_cleanly() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let svg = contamination(&s.chip, []);
        assert!(!svg.contains("<text"), "no counts should be drawn");
    }
}
