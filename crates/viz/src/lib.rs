//! Chip-layout and schedule visualization for the PathDriver-Wash
//! reproduction.
//!
//! Two render targets, no external dependencies:
//!
//! - **SVG** ([`svg`]): publication-style figures — the chip layout with
//!   devices, ports, and a highlighted flow path (Fig. 2(a) of the paper),
//!   and a Gantt chart of a schedule with operations, fluidic tasks, and
//!   wash operations in distinct colors (Figs. 2(b)/3).
//! - **ASCII** ([`ascii`]): quick terminal views of the same artifacts, for
//!   logs and examples.
//! - **Heatmaps** ([`heatmap`]): per-cell contamination intensity over a
//!   chip layout.
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let s = synthesize(&bench)?;
//! let svg = pdw_viz::svg::chip(&s.chip, None);
//! assert!(svg.starts_with("<svg"));
//! let gantt = pdw_viz::svg::gantt(&s.chip, &s.schedule);
//! assert!(gantt.contains("</svg>"));
//! println!("{}", pdw_viz::ascii::gantt(&s.schedule, 72));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod heatmap;
pub mod svg;
