//! SVG rendering of chips and schedules.

use std::fmt::Write as _;

use pdw_biochip::{CellKind, Chip, FlowPath};
use pdw_sched::{Schedule, TaskKind};

/// Pixel size of one grid cell in chip drawings.
const CELL_PX: u32 = 24;

/// Escapes the few XML-special characters that can appear in labels.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a chip layout as SVG: channels in light gray, devices in blue
/// with their labels, flow ports in green, waste ports in red, and an
/// optional `highlight` flow path drawn over the grid in orange.
pub fn chip(chip: &Chip, highlight: Option<&FlowPath>) -> String {
    let g = chip.grid();
    let (w, h) = (g.width() as u32 * CELL_PX, g.height() as u32 * CELL_PX);
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);

    for c in g.coords() {
        let (x, y) = (c.x as u32 * CELL_PX, c.y as u32 * CELL_PX);
        let fill = match g.kind(c) {
            CellKind::Empty => continue,
            CellKind::Channel => "#e8e8e8",
            CellKind::Device(_) => "#7aa6d6",
            CellKind::FlowPort(_) => "#74c476",
            CellKind::WastePort(_) => "#fb6a4a",
        };
        let _ = write!(
            out,
            r##"<rect x="{x}" y="{y}" width="{CELL_PX}" height="{CELL_PX}" fill="{fill}" stroke="#bbb" stroke-width="1"/>"##
        );
    }

    // Device labels, centered on their footprints.
    for d in chip.devices() {
        let f = d.footprint();
        let cx: u32 = f
            .iter()
            .map(|c| c.x as u32 * CELL_PX + CELL_PX / 2)
            .sum::<u32>()
            / f.len() as u32;
        let cy = f[0].y as u32 * CELL_PX + CELL_PX / 2 + 4;
        let _ = write!(
            out,
            r#"<text x="{cx}" y="{cy}" font-size="10" font-family="sans-serif" text-anchor="middle">{}</text>"#,
            esc(d.label())
        );
    }

    if let Some(path) = highlight {
        let pts: Vec<String> = path
            .iter()
            .map(|c| {
                format!(
                    "{},{}",
                    c.x as u32 * CELL_PX + CELL_PX / 2,
                    c.y as u32 * CELL_PX + CELL_PX / 2
                )
            })
            .collect();
        let _ = write!(
            out,
            r##"<polyline points="{}" fill="none" stroke="#ff8c00" stroke-width="4" stroke-linecap="round" stroke-linejoin="round" opacity="0.85"/>"##,
            pts.join(" ")
        );
    }

    out.push_str("</svg>");
    out
}

/// Row height of the Gantt chart.
const ROW_PX: u32 = 18;
/// Horizontal pixels per second.
const SEC_PX: u32 = 8;
/// Left margin reserved for row labels.
const LABEL_PX: u32 = 110;

fn task_color(kind: &TaskKind) -> &'static str {
    match kind {
        TaskKind::Injection { .. } => "#74c476",
        TaskKind::Transport { .. } => "#7aa6d6",
        TaskKind::ExcessRemoval { .. } => "#fdd0a2",
        TaskKind::OutputRemoval { .. } => "#fb6a4a",
        TaskKind::Wash { .. } => "#9e9ac8",
    }
}

/// Renders a schedule as an SVG Gantt chart: one row per operation (on its
/// device) and one row per fluidic task, washes in purple — the Fig. 2(b) /
/// Fig. 3 style of the paper.
pub fn gantt(chip: &Chip, schedule: &Schedule) -> String {
    let makespan = schedule.makespan().max(1);
    let rows = schedule.ops().len() + schedule.task_count();
    let w = LABEL_PX + makespan * SEC_PX + 10;
    let h = (rows as u32 + 2) * ROW_PX + 20;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);

    // Time grid every 10 s.
    let mut t = 0;
    while t <= makespan {
        let x = LABEL_PX + t * SEC_PX;
        let _ = write!(
            out,
            r##"<line x1="{x}" y1="10" x2="{x}" y2="{}" stroke="#eee"/><text x="{x}" y="{}" font-size="8" font-family="sans-serif" text-anchor="middle">{t}</text>"##,
            h - 14,
            h - 4
        );
        t += 10;
    }

    let mut row = 0u32;
    let mut bar = |label: String, start: u32, dur: u32, color: &str, out: &mut String| {
        let y = 12 + row * ROW_PX;
        let x = LABEL_PX + start * SEC_PX;
        let bw = (dur * SEC_PX).max(2);
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" font-size="9" font-family="sans-serif" text-anchor="end">{}</text>"#,
            LABEL_PX - 6,
            y + 12,
            esc(&label)
        );
        let _ = write!(
            out,
            r##"<rect x="{x}" y="{y}" width="{bw}" height="{}" fill="{color}" stroke="#666" stroke-width="0.5"/>"##,
            ROW_PX - 4
        );
        row += 1;
    };

    let mut ops = schedule.ops().to_vec();
    ops.sort_by_key(|o| (o.start, o.op));
    for o in &ops {
        let label = format!("{} @ {}", o.op, chip.device(o.device).label());
        bar(label, o.start, o.duration, "#fdae6b", &mut out);
    }
    for id in schedule.tasks_chronological() {
        let t = schedule.task(id);
        let label = format!("{} {}", t.kind().tag(), id);
        bar(
            label,
            t.start(),
            t.duration(),
            task_color(t.kind()),
            &mut out,
        );
    }

    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn chip_svg_is_well_formed() {
        let s = synthesize(&benchmarks::demo()).unwrap();
        let svg = chip(&s.chip, None);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One label per device.
        assert_eq!(svg.matches("<text").count(), s.chip.devices().len());
    }

    #[test]
    fn highlight_path_is_drawn() {
        let s = synthesize(&benchmarks::demo()).unwrap();
        let (_, task) = s.schedule.tasks().next().unwrap();
        let svg = chip(&s.chip, Some(task.path()));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn gantt_has_a_bar_per_op_and_task() {
        let s = synthesize(&benchmarks::demo()).unwrap();
        let svg = gantt(&s.chip, &s.schedule);
        let bars = svg.matches(r##"stroke="#666""##).count();
        assert_eq!(bars, s.schedule.ops().len() + s.schedule.task_count());
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(esc("a<b&c>"), "a&lt;b&amp;c&gt;");
    }
}
