//! Golden-file tests for the ASCII and SVG renderers.
//!
//! Rendering output is compared byte-for-byte against committed snapshots
//! in `tests/golden/`. The demo benchmark synthesizes deterministically, so
//! any diff is a real rendering change: inspect it, then refresh the
//! snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pdw-viz --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use pdw_assay::benchmarks;
use pdw_synth::{synthesize, Synthesis};

fn demo() -> (pdw_assay::benchmarks::Benchmark, Synthesis) {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    (bench, s)
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); create it with \
             UPDATE_GOLDEN=1 cargo test -p pdw-viz --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden snapshot; if the change is \
         intentional, refresh with UPDATE_GOLDEN=1"
    );
}

#[test]
fn ascii_gantt_matches_golden() {
    let (_, s) = demo();
    assert_golden("demo_gantt.txt", &pdw_viz::ascii::gantt(&s.schedule, 72));
}

#[test]
fn svg_chip_matches_golden() {
    let (_, s) = demo();
    assert_golden("demo_chip.svg", &pdw_viz::svg::chip(&s.chip, None));
}

#[test]
fn svg_chip_with_highlight_matches_golden() {
    let (_, s) = demo();
    // Highlight the first task's flow path — stable because synthesis is
    // deterministic and task ids are assigned in construction order.
    let (_, first) = s.schedule.tasks().next().expect("demo has tasks");
    assert_golden(
        "demo_chip_highlight.svg",
        &pdw_viz::svg::chip(&s.chip, Some(first.path())),
    );
}

#[test]
fn svg_gantt_matches_golden() {
    let (_, s) = demo();
    assert_golden("demo_gantt.svg", &pdw_viz::svg::gantt(&s.chip, &s.schedule));
}

#[test]
fn svg_heatmap_matches_golden() {
    let (_, s) = demo();
    // A synthetic but deterministic contamination profile: every cell of the
    // first task's path touched once, its first cell three times.
    let path = s.schedule.tasks().next().expect("demo has tasks").1.path();
    let mut counts: Vec<_> = path.iter().map(|&c| (c, 1usize)).collect();
    counts[0].1 = 3;
    assert_golden(
        "demo_heatmap.svg",
        &pdw_viz::heatmap::contamination(&s.chip, counts),
    );
}
