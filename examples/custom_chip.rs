//! Build a custom assay and run it through the whole pipeline.
//!
//! ```text
//! cargo run -p pathdriver-wash --example custom_chip
//! ```
//!
//! Defines a small immunoassay from scratch with [`AssayBuilder`], gives it
//! a device library and grid, and runs synthesis + wash optimization. Use
//! this as the template for your own protocols.

use pathdriver_wash::{pdw, PdwConfig};
use pdw_assay::benchmarks::Benchmark;
use pdw_assay::{AssayBuilder, OpKind};
use pdw_synth::synthesize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An antigen capture assay: bind, wash out by separation, amplify, read.
    let mut b = AssayBuilder::new("immuno");
    let sample = b.reagent("serum sample");
    let beads = b.reagent("capture beads");
    let conjugate = b.reagent("enzyme conjugate");
    let substrate = b.reagent("substrate");

    let bind = b.op("bind", OpKind::Mix, 4, [sample.into(), beads.into()])?;
    let capture = b.op("capture", OpKind::Separate, 5, [bind.into()])?;
    let label = b.op("label", OpKind::Mix, 3, [capture.into(), conjugate.into()])?;
    let develop = b.op("develop", OpKind::Mix, 3, [label.into(), substrate.into()])?;
    let _read = b.op("read", OpKind::Detect, 2, [develop.into()])?;

    let bench = Benchmark {
        name: "immuno".into(),
        graph: b.build()?,
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Separate,
            OpKind::Detect,
            OpKind::Store,
        ],
        grid: (13, 13),
    };

    let synthesis = synthesize(&bench)?;
    println!("chip:\n{}", synthesis.chip.grid());
    let result = pdw(&bench, &synthesis, &PdwConfig::default())?;
    println!("{}", result.schedule);
    println!(
        "N_wash = {}, L_wash = {:.0} mm, T_assay = {} s, objective = {:.1}",
        result.metrics.n_wash,
        result.metrics.l_wash_mm,
        result.metrics.t_assay,
        result.objective(&pathdriver_wash::Weights::default()),
    );
    Ok(())
}
