//! An in-vitro-diagnostics panel: four independent sample/reagent chains.
//!
//! ```text
//! cargo run -p pathdriver-wash --example ivd_panel
//! ```
//!
//! IVD panels are the paper's motivating workload (Section I): detection
//! fluids carrying different luminescence agents must never share dirty
//! channels, or readouts are corrupted. This example runs the IVD benchmark
//! and shows which wash exemptions the necessity analysis found, then prints
//! the optimized schedule.

use pathdriver_wash::{pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_contam::{analyze, NecessityOptions};
use pdw_synth::synthesize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = benchmarks::ivd();
    let synthesis = synthesize(&bench)?;

    // Where does contamination actually happen, and what can be skipped?
    let analysis = analyze(
        &synthesis.chip,
        &bench.graph,
        &synthesis.schedule,
        NecessityOptions::full(),
    );
    println!(
        "contamination events: {}   wash requirements after analysis: {}",
        analysis.events.len(),
        analysis.requirements.len()
    );
    println!(
        "exempt: {} never reused (Type 1), {} same-fluid (Type 2), {} waste-bound (Type 3)",
        analysis.count(pdw_contam::Classification::Type1Unused),
        analysis.count(pdw_contam::Classification::Type2SameFluid),
        analysis.count(pdw_contam::Classification::Type3WasteOnly),
    );

    let result = pdw(&bench, &synthesis, &PdwConfig::default())?;
    println!("\noptimized schedule:");
    println!("{}", result.schedule);
    println!(
        "N_wash = {}, L_wash = {:.0} mm, T_assay = {} s",
        result.metrics.n_wash, result.metrics.l_wash_mm, result.metrics.t_assay
    );
    Ok(())
}
