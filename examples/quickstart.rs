//! Quickstart: run the paper's demo assay end-to-end.
//!
//! ```text
//! cargo run -p pathdriver-wash --example quickstart
//! ```
//!
//! Synthesizes the Fig. 1(c) bioassay onto a chip, runs the DAWO baseline
//! and PathDriver-Wash, and prints the paper's metrics side by side.

use pathdriver_wash::{dawo, pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_sim::Metrics;
use pdw_synth::synthesize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The bioassay: seven operations over two reagents (Fig. 1(c)).
    let bench = benchmarks::demo();
    println!("{}", bench.graph);

    // 2. Architectural synthesis: chip layout + wash-free schedule.
    let synthesis = synthesize(&bench)?;
    let base = Metrics::measure(&bench.graph, &synthesis.schedule);
    println!(
        "chip: {}x{} grid, {} devices, wash-free T_assay = {} s",
        synthesis.chip.grid().width(),
        synthesis.chip.grid().height(),
        synthesis.chip.devices().len(),
        base.t_assay
    );

    // 3. Wash optimization: baseline vs the paper's method.
    let baseline = dawo(&bench, &synthesis)?;
    let optimized = pdw(&bench, &synthesis, &PdwConfig::default())?;

    println!("\n{:<22} {:>8} {:>8}", "metric", "DAWO", "PDW");
    println!(
        "{:<22} {:>8} {:>8}",
        "N_wash", baseline.metrics.n_wash, optimized.metrics.n_wash
    );
    println!(
        "{:<22} {:>8.0} {:>8.0}",
        "L_wash (mm)", baseline.metrics.l_wash_mm, optimized.metrics.l_wash_mm
    );
    println!(
        "{:<22} {:>8} {:>8}",
        "T_delay (s)",
        baseline.metrics.delay_vs(&base),
        optimized.metrics.delay_vs(&base)
    );
    println!(
        "{:<22} {:>8} {:>8}",
        "T_assay (s)", baseline.metrics.t_assay, optimized.metrics.t_assay
    );
    println!(
        "{:<22} {:>8} {:>8}",
        "total wash time (s)", baseline.metrics.total_wash_time, optimized.metrics.total_wash_time
    );
    println!(
        "\nPDW integrated {} excess removals into washes; ILP used: {}",
        optimized.integrated, optimized.solver.used_ilp
    );
    Ok(())
}
