//! Tour of the built-in MILP solver.
//!
//! ```text
//! cargo run -p pathdriver-wash --example solver_tour
//! ```
//!
//! The wash optimizer's ILPs run on `pdw-ilp`, a self-contained
//! simplex + branch-and-bound solver. This example uses it directly on the
//! kind of model PathDriver-Wash generates: two washes sharing a channel,
//! each with two candidate paths, minimizing β·L_wash + γ·T_assay.

use std::time::Duration;

use pdw_ilp::{solve, Model, Relation, SolveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut m = Model::new("two-washes");
    const M: f64 = 1e3;
    let (beta, gamma) = (0.3, 0.4);

    // Wash A: candidates of length 20 mm (4 s) or 32 mm (5 s).
    let a_start = m.continuous("a_start", 0.0, M, 0.0);
    let a_short = m.binary("a_short", beta * 20.0);
    let a_long = m.binary("a_long", beta * 32.0);
    m.constraint([(a_short, 1.0), (a_long, 1.0)], Relation::Eq, 1.0);

    // Wash B: candidates of length 24 mm (4 s) or 30 mm (5 s).
    let b_start = m.continuous("b_start", 0.0, M, 0.0);
    let b_short = m.binary("b_short", beta * 24.0);
    let b_long = m.binary("b_long", beta * 30.0);
    m.constraint([(b_short, 1.0), (b_long, 1.0)], Relation::Eq, 1.0);

    // Windows: A in [3, 20], B in [6, 20] (wash ends before reuse).
    let a_end = |m: &mut Model, bound: f64| {
        // a_end = a_start + 4·a_short + 5·a_long <= bound
        m.constraint(
            [(a_start, 1.0), (a_short, 4.0), (a_long, 5.0)],
            Relation::Le,
            bound,
        );
    };
    m.constraint([(a_start, 1.0)], Relation::Ge, 3.0);
    a_end(&mut m, 20.0);
    m.constraint([(b_start, 1.0)], Relation::Ge, 6.0);
    m.constraint(
        [(b_start, 1.0), (b_short, 4.0), (b_long, 5.0)],
        Relation::Le,
        20.0,
    );

    // The short candidates share a channel: A and B must not overlap when
    // both pick them (η disjunction, Eq. 20 of the paper).
    let eta = m.binary("eta", 0.0);
    // η=1: A before B:  b_start - a_end >= -M(1-η) - M(1-a_short) - M(1-b_short)
    m.constraint(
        [
            (b_start, 1.0),
            (a_start, -1.0),
            (a_short, -4.0 - M),
            (a_long, -5.0),
            (eta, -M),
            (b_short, -M),
        ],
        Relation::Ge,
        -3.0 * M,
    );
    // η=0: B before A.
    m.constraint(
        [
            (a_start, 1.0),
            (b_start, -1.0),
            (b_short, -4.0 - M),
            (b_long, -5.0),
            (eta, M),
            (a_short, -M),
        ],
        Relation::Ge,
        -2.0 * M,
    );

    // Makespan.
    let t_assay = m.continuous("T_assay", 0.0, M, gamma);
    m.constraint(
        [
            (t_assay, 1.0),
            (a_start, -1.0),
            (a_short, -4.0),
            (a_long, -5.0),
        ],
        Relation::Ge,
        0.0,
    );
    m.constraint(
        [
            (t_assay, 1.0),
            (b_start, -1.0),
            (b_short, -4.0),
            (b_long, -5.0),
        ],
        Relation::Ge,
        0.0,
    );

    let sol = solve(
        &m,
        &SolveOptions {
            time_limit: Duration::from_secs(5),
            ..Default::default()
        },
    )?;
    println!("status: {:?} after {} nodes", sol.status, sol.nodes);
    println!(
        "wash A: start {:.0}, {} candidate",
        sol.value(a_start),
        if sol.bool_value(a_short) {
            "short"
        } else {
            "long"
        }
    );
    println!(
        "wash B: start {:.0}, {} candidate",
        sol.value(b_start),
        if sol.bool_value(b_short) {
            "short"
        } else {
            "long"
        }
    );
    println!(
        "T_assay = {:.0}, objective = {:.2}",
        sol.value(t_assay),
        sol.objective
    );
    Ok(())
}
