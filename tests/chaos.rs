//! Chaos suite: the degradation ladder on damaged chips under hostile
//! deadlines.
//!
//! Every test here sweeps seeded fault corpora against tiny pipeline
//! budgets and asserts the fault-tolerance contract end to end: the solver
//! never panics, every served plan is physically valid and oracle-clean on
//! the chip *as damaged*, every rejected rung carries a typed reason, and
//! outcomes are bit-identical at any thread count.

use std::time::Duration;

use pathdriver_wash::{
    plan_resilient, plan_resilient_batch, verify, PdwConfig, RungKind, RungRejection,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_gen::{faulted_instance, inject_faults, spec_from_seed};
use pdw_synth::{synthesize, Synthesis};

fn greedy_config(budget: Option<Duration>) -> PdwConfig {
    PdwConfig {
        ilp: false,
        pipeline_budget: budget,
        ..PdwConfig::default()
    }
}

#[test]
fn seeded_fault_corpus_survives_the_chaos_sweep() {
    let opts = verify::ChaosOptions::default();
    let mut checked = 0;
    for seed in 0..10 {
        let Some(report) = verify::chaos_seed(seed, &opts) else {
            continue;
        };
        assert!(report.passed(), "seed {seed}: {:?}", report.failures);
        assert!(report.served > 0, "seed {seed}: nothing ever served");
        checked += 1;
    }
    assert!(checked >= 3, "only {checked}/10 chaos seeds were feasible");
}

#[test]
fn bundled_suite_survives_chaos_with_injected_faults() {
    let opts = verify::ChaosOptions::default();
    let mut damaged = 0;
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap();
        let faulted = inject_faults(&s, 0xC0FFEE);
        if !faulted.chip.faults().is_empty() {
            damaged += 1;
        }
        let report = verify::chaos_instance(&bench.name, &bench, &faulted, &opts);
        assert!(report.passed(), "{}: {:?}", bench.name, report.failures);
        assert!(report.served > 0, "{}: nothing ever served", bench.name);
    }
    assert!(damaged > 0, "fault injection never damaged a suite chip");
}

#[test]
fn expired_deadline_records_a_typed_rejection_and_still_serves() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).unwrap();
    let outcome = plan_resilient(&bench, &s, &greedy_config(Some(Duration::ZERO)));
    assert!(outcome.is_served(), "{outcome}");
    assert_eq!(outcome.rung, Some(RungKind::Greedy));
    assert!(matches!(
        outcome.rejection_of(RungKind::Pdw),
        Some(RungRejection::DeadlineExpired)
    ));
    // The ladder's acceptance gate already ran, but the contract is worth
    // restating from outside: the served plan is executable and clean.
    let plan = outcome.served.unwrap();
    pdw_sim::validate(&s.chip, &bench.graph, &plan.schedule).unwrap();
    assert!(pdw_sim::propagate(&s.chip, &bench.graph, &plan.schedule).is_clean());
}

#[test]
fn served_plans_respect_the_faults_of_a_damaged_chip() {
    let mut served_on_damaged = 0;
    for seed in 0..10u64 {
        let Ok((bench, s)) = faulted_instance(&spec_from_seed(seed)) else {
            continue;
        };
        if s.chip.faults().is_empty() {
            continue;
        }
        let outcome = plan_resilient(&bench, &s, &greedy_config(None));
        let Some(plan) = &outcome.served else {
            // Every rejection must be typed; "no plan" is an acceptable
            // outcome on a badly damaged chip, silence is not.
            for a in &outcome.attempts {
                assert!(a.rejection.is_some(), "seed {seed}: untyped rejection");
            }
            continue;
        };
        // Fault-aware re-verification on the damaged chip: validate checks
        // every path against blocked cells/edges/disabled ports, and the
        // oracle re-propagates contamination around them.
        pdw_sim::validate(&s.chip, &bench.graph, &plan.schedule)
            .unwrap_or_else(|e| panic!("seed {seed}: served an invalid plan: {e}"));
        let report = pdw_sim::propagate(&s.chip, &bench.graph, &plan.schedule);
        assert!(
            report.is_clean(),
            "seed {seed}: served a dirty plan: {:?}",
            report.violations
        );
        served_on_damaged += 1;
    }
    assert!(served_on_damaged > 0, "no damaged chip was ever served");
}

#[test]
fn resilient_batch_is_deterministic_across_threads_under_tiny_deadlines() {
    let corpus: Vec<(Benchmark, Synthesis)> = (0..8)
        .filter_map(|seed| faulted_instance(&spec_from_seed(seed)).ok())
        .collect();
    assert!(
        corpus.len() >= 3,
        "corpus too thin for the determinism sweep"
    );
    let instances: Vec<(&Benchmark, &Synthesis)> = corpus.iter().map(|(b, s)| (b, s)).collect();

    for budget in [Some(Duration::ZERO), Some(Duration::from_nanos(1)), None] {
        let config = greedy_config(budget);
        let base = plan_resilient_batch(&instances, &config, 1);
        assert_eq!(base.len(), instances.len());
        for threads in [2, 8] {
            let got = plan_resilient_batch(&instances, &config, threads);
            for (i, (a, b)) in base.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.rung, b.rung,
                    "instance {i} at {threads} threads, budget {budget:?}"
                );
                match (&a.served, &b.served) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.schedule, y.schedule, "instance {i}");
                        assert_eq!(x.metrics, y.metrics, "instance {i}");
                    }
                    (None, None) => {}
                    _ => panic!("instance {i}: served/unserved flip at {threads} threads"),
                }
            }
        }
    }
}
