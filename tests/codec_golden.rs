//! Golden-file test pinning the canonical binary encoding.
//!
//! The codec is the wire and disk format: persistent memo stores and
//! worker pipes both speak it, so its byte layout is a compatibility
//! contract, not an implementation detail. This test freezes the exact
//! encoded bytes of a small deterministic payload (the default
//! [`PdwConfig`] frame) and the canonical digests of the demo instance.
//! Any codec change — a reordered field, a new value tag, a different
//! float encoding, a digest tweak — diffs here first.
//!
//! An *intentional* format change must bump
//! [`pathdriver_wash::SCHEMA_VERSION`] (so old stores are evicted as
//! [`CodecError::VersionSkew`](pathdriver_wash::CodecError), not
//! misread), and then refresh the snapshot with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p pathdriver-wash --test codec_golden
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use pathdriver_wash::codec::{encode_frame, FrameType};
use pathdriver_wash::{
    chip_hash, config_fingerprint, instance_hash, memo_key, PdwConfig, SCHEMA_VERSION,
};
use pdw_assay::benchmarks;
use pdw_synth::synthesize;

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 32 == 0 {
            out.push('\n');
        }
        write!(out, "{b:02x}").expect("string write");
    }
    out
}

fn assert_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); create it with \
             UPDATE_GOLDEN=1 cargo test -p pathdriver-wash --test codec_golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: the canonical encoding drifted. If intentional, bump \
         SCHEMA_VERSION and refresh with UPDATE_GOLDEN=1"
    );
}

#[test]
fn default_config_frame_bytes_are_pinned() {
    let frame = encode_frame(FrameType::Config, &PdwConfig::default());
    assert_golden("codec_config_frame.hex", &(hex(&frame) + "\n"));
}

#[test]
fn demo_instance_digests_are_pinned() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    let config = PdwConfig::default();
    let ih = instance_hash(&bench, &s);
    let fp = config_fingerprint(&config);
    let report = format!(
        "schema_version = {}\n\
         demo_chip_hash = {:016x}\n\
         demo_instance_hash = {:016x}\n\
         default_config_fingerprint = {:016x}\n\
         demo_memo_key = {:016x}\n",
        SCHEMA_VERSION,
        chip_hash(&s.chip),
        ih,
        fp,
        memo_key(ih, fp),
    );
    assert_golden("codec_digests.txt", &report);
}
