//! Property tests of the canonical binary codec: every payload the system
//! frames — instances, fault-injected synstates, repair deltas, mega
//! sub-chip views, plan artifacts — must survive an encode/decode round
//! trip bit-exactly, and every way a frame can be damaged must surface as
//! a *typed* [`CodecError`], never a wrong value.
//!
//! "Bit-exactly" is asserted on the canonical bytes themselves:
//! `canonical_bytes(decode(encode(x))) == canonical_bytes(x)` is the
//! codec's fixed-point property and needs no `PartialEq` on the domain
//! types (where one exists, direct equality is asserted too).

use proptest::prelude::*;

use pathdriver_wash::codec::{
    canonical_bytes, check_frame, check_frame_capped, decode_frame, encode_frame, read_frame,
    read_frame_capped, FrameType,
};
use pathdriver_wash::{
    chip_hash, config_fingerprint, instance_hash, plan_resilient, CodecError, PdwConfig,
    PlanArtifact, PlanDelta, Weights,
};
use pdw_assay::OpId;
use pdw_biochip::Chip;
use pdw_gen::{instance, spec_strategy, Skip};
use pdw_synth::Synthesis;

/// Round-trips `value` through a frame of type `ty` and asserts the
/// decoded value re-encodes to the identical canonical bytes.
fn assert_fixed_point<T>(ty: FrameType, value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize,
{
    let frame = encode_frame(ty, value);
    let decoded: T = decode_frame(ty, &frame).expect("frame decodes");
    assert_eq!(
        canonical_bytes(&decoded),
        canonical_bytes(value),
        "decode(encode(x)) drifted from x"
    );
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Generated instances (benchmark + synthesis), their wash
    /// requirements, and their fault-injected variants all round-trip
    /// bit-exactly, and the decoded instance hashes identically.
    #[test]
    fn generated_instances_round_trip(spec in spec_strategy()) {
        let (bench, s) = match instance(&spec) {
            Ok(pair) => pair,
            Err(Skip::Deadlock(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            Err(Skip::Infeasible(e)) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "synthesis: {e}"
                )))
            }
        };

        let decoded: Synthesis = assert_fixed_point(FrameType::Instance, &s);
        prop_assert_eq!(
            instance_hash(&bench, &decoded),
            instance_hash(&bench, &s),
            "decoded synthesis hashes differently"
        );
        prop_assert_eq!(chip_hash(&decoded.chip), chip_hash(&s.chip));

        // The analyzed wash-requirement set (the worker protocol's job
        // payload) round-trips as well.
        let analysis = pdw_contam::analyze(
            &s.chip,
            &bench.graph,
            &s.schedule,
            pdw_contam::NecessityOptions::full(),
        );
        assert_fixed_point(FrameType::Instance, &analysis.requirements);

        // Fault injection mutates the chip; the faulted synthesis must
        // round-trip with its fault set intact (distinct chip hash).
        let faulted = pdw_gen::inject_faults(&s, 7);
        let decoded_faulted: Synthesis = assert_fixed_point(FrameType::Instance, &faulted);
        prop_assert_eq!(chip_hash(&decoded_faulted.chip), chip_hash(&faulted.chip));
    }

    /// Every mega sub-chip view — a region carved from a partitioned
    /// mega grid, band faults applied — round-trips bit-exactly.
    #[test]
    fn mega_sub_chip_views_round_trip(seed in 0u64..4) {
        let spec = pdw_gen::mega_spec(65, 12, seed);
        let (_, pristine) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
        let s = pdw_gen::inject_faults(&pristine, seed);
        let part = pdw_biochip::partition(&s.chip, 4).expect("mega grid partitions");
        prop_assert!(part.regions().len() > 1);
        for region in part.regions() {
            let decoded: Chip = assert_fixed_point(FrameType::Chip, region.chip());
            prop_assert_eq!(chip_hash(&decoded), chip_hash(region.chip()));
        }
    }
}

#[test]
fn every_plan_delta_variant_round_trips_equal() {
    let bench = pdw_assay::benchmarks::demo();
    let s = pdw_synth::synthesize(&bench).expect("demo synthesizes");
    let analysis = pdw_contam::analyze(
        &s.chip,
        &bench.graph,
        &s.schedule,
        pdw_contam::NecessityOptions::full(),
    );
    let requirement = analysis.requirements.first().expect("demo needs washes");
    let fault = (1..32)
        .find_map(|seed| pdw_gen::fault_delta(&s, seed))
        .expect("some seed yields a fault delta");
    let deltas = [
        PlanDelta::Fault(fault),
        PlanDelta::DelayOp {
            op: OpId(3),
            delay: 17,
        },
        PlanDelta::AddRequirement(requirement.clone()),
        PlanDelta::DropRequirement {
            cell: requirement.cell,
        },
    ];
    for delta in &deltas {
        let decoded: PlanDelta = assert_fixed_point(FrameType::Delta, delta);
        assert_eq!(&decoded, delta, "PlanDelta implements PartialEq; use it");
    }
}

#[test]
fn certified_artifacts_round_trip_and_still_verify() {
    let bench = pdw_assay::benchmarks::demo();
    let s = pdw_synth::synthesize(&bench).expect("demo synthesizes");
    let config = PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    };
    let outcome = plan_resilient(&bench, &s, &config);
    let result = outcome.served.expect("demo solves");
    let rung = outcome.rung.expect("a rung served");
    let artifact = PlanArtifact::certified(
        instance_hash(&bench, &s),
        config_fingerprint(&config),
        rung,
        &bench,
        &s,
        result,
    );
    let decoded = PlanArtifact::decode(&artifact.encode()).expect("artifact decodes");
    assert_eq!(
        canonical_bytes(&decoded),
        canonical_bytes(&artifact),
        "artifact round trip drifted"
    );
    decoded
        .verify(&bench, &s)
        .expect("decoded artifact re-verifies against the live instance");
}

/// A frame for damage tests: small, deterministic, cheap to build.
fn sample_frame() -> Vec<u8> {
    encode_frame(FrameType::Config, &PdwConfig::default())
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let frame = sample_frame();
    // Every proper prefix must fail closed with Truncated — never panic,
    // never decode to a value.
    for cut in 0..frame.len() {
        match check_frame(&frame[..cut]) {
            Err(CodecError::Truncated { needed, have }) => {
                assert_eq!(have, cut);
                assert!(needed > cut, "cut {cut}: needed {needed} not past cut");
            }
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn corrupted_payload_is_a_digest_mismatch() {
    let mut frame = sample_frame();
    let mid = frame.len() / 2;
    frame[mid] ^= 0x40;
    assert!(
        matches!(check_frame(&frame), Err(CodecError::DigestMismatch { .. })),
        "a flipped payload byte must fail the digest"
    );
}

#[test]
fn corrupted_digest_trailer_is_a_digest_mismatch() {
    let mut frame = sample_frame();
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    assert!(matches!(
        check_frame(&frame),
        Err(CodecError::DigestMismatch { .. })
    ));
}

#[test]
fn foreign_magic_and_version_skew_are_typed() {
    let mut frame = sample_frame();
    frame[0] = b'X';
    assert!(matches!(
        check_frame(&frame),
        Err(CodecError::BadMagic { .. })
    ));

    let mut frame = sample_frame();
    frame[4] = frame[4].wrapping_add(1);
    match check_frame(&frame) {
        Err(CodecError::VersionSkew { found, expected }) => {
            assert_eq!(found, expected.wrapping_add(1));
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

#[test]
fn mislabelled_frame_type_is_typed() {
    let frame = sample_frame();
    match decode_frame::<PdwConfig>(FrameType::Chip, &frame) {
        Err(CodecError::UnexpectedFrameType { found, expected }) => {
            assert_eq!(found, FrameType::Config as u8);
            assert_eq!(expected, FrameType::Chip as u8);
        }
        other => panic!("expected UnexpectedFrameType, got {other:?}"),
    }
}

#[test]
fn stream_ending_mid_frame_is_truncated_not_eof() {
    let frame = sample_frame();
    // Clean EOF at a frame boundary: None.
    let mut cursor = std::io::Cursor::new(frame.clone());
    let read = read_frame(&mut cursor).expect("whole frame reads");
    assert_eq!(read.as_deref(), Some(frame.as_slice()));
    assert!(matches!(read_frame(&mut cursor), Ok(None)), "clean EOF");

    // EOF mid-header and mid-payload: Truncated with honest counts.
    for cut in [3, frame.len() - 5] {
        let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
        match read_frame(&mut cursor) {
            Err(CodecError::Truncated { have, .. }) => assert_eq!(have, cut),
            other => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

/// A reader that counts how many bytes the decoder actually consumed —
/// the observable proof that an oversized length field is rejected
/// *before* any payload byte is read (and hence before any payload
/// buffer is allocated).
struct CountingReader {
    inner: std::io::Cursor<Vec<u8>>,
    consumed: usize,
}

impl CountingReader {
    fn new(bytes: Vec<u8>) -> Self {
        CountingReader {
            inner: std::io::Cursor::new(bytes),
            consumed: 0,
        }
    }
}

impl std::io::Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: corrupting the u32 length field — any of its four bytes,
    /// any non-zero XOR mask — never drives an allocation past the cap.
    /// An inflated length is a typed `FrameTooLarge` raised after exactly
    /// the header was read (no payload byte consumed, nothing allocated);
    /// a deflated length misaligns the digest and fails `check_frame`.
    #[test]
    fn corrupt_length_bytes_at_every_offset_never_allocate_past_cap(mask in 1u8..=u8::MAX) {
        let clean = sample_frame();
        let (_, payload) = check_frame(&clean).expect("clean frame checks");
        let cap = payload.len();
        let header_len = clean.len() - payload.len() - 8; // magic+ver+type+len
        prop_assert_eq!(header_len, 10);
        for offset in 6..10 {
            let mut frame = clean.clone();
            frame[offset] ^= mask;
            let corrupted_len =
                u32::from_le_bytes(frame[6..10].try_into().unwrap()) as usize;
            prop_assert_ne!(corrupted_len, cap, "non-zero mask must change the length");
            let mut reader = CountingReader::new(frame.clone());
            match read_frame_capped(&mut reader, cap) {
                Err(CodecError::FrameTooLarge { len, cap: c }) => {
                    prop_assert!(corrupted_len > cap, "only oversized lengths are FrameTooLarge");
                    prop_assert_eq!(len, corrupted_len);
                    prop_assert_eq!(c, cap);
                    prop_assert_eq!(
                        reader.consumed, header_len,
                        "rejection must happen before any payload byte is read"
                    );
                }
                Ok(Some(bytes)) => {
                    // A deflated length reads fewer bytes than the real
                    // frame; the digest trailer no longer lines up, so the
                    // envelope check fails closed — typed, never a value.
                    prop_assert!(corrupted_len < cap);
                    prop_assert!(check_frame_capped(&bytes, cap).is_err());
                }
                Err(other) => {
                    // Any other typed refusal (e.g. Truncated when the
                    // deflated read path lands mid-stream) is fine too.
                    prop_assert!(corrupted_len != cap, "typed error expected: {other:?}");
                }
                Ok(None) => prop_assert!(false, "corrupt frame must not be a clean EOF"),
            }
        }
    }
}

#[test]
fn oversized_length_field_is_frame_too_large_not_an_allocation() {
    let mut frame = sample_frame();
    // Claim a ~3.9 GiB payload.
    frame[6..10].copy_from_slice(&0xf000_0000u32.to_le_bytes());
    let mut reader = CountingReader::new(frame.clone());
    match read_frame(&mut reader) {
        Err(CodecError::FrameTooLarge { len, cap }) => {
            assert_eq!(len, 0xf000_0000usize);
            assert_eq!(cap, pathdriver_wash::codec::DEFAULT_MAX_FRAME_LEN);
            assert_eq!(reader.consumed, 10, "no payload byte read");
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(matches!(
        check_frame(&frame),
        Err(CodecError::FrameTooLarge { .. })
    ));
}

#[test]
fn canonical_bytes_are_insensitive_to_weight_noise_only_when_equal() {
    // The fingerprint is a function of the config *values*: a changed
    // weight must change the canonical bytes (no accidental lossiness).
    let base = PdwConfig::default();
    let tweaked = PdwConfig {
        weights: Weights {
            alpha: base.weights.alpha + 1.0,
            ..base.weights
        },
        ..base.clone()
    };
    assert_ne!(canonical_bytes(&base), canonical_bytes(&tweaked));
    assert_ne!(config_fingerprint(&base), config_fingerprint(&tweaked));
}
