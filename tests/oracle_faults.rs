//! Fault-injection tests for the contamination-propagation oracle.
//!
//! The oracle is only worth trusting if it (a) accepts every plan the
//! optimizers actually produce and (b) notices when a single wash is
//! sabotaged. Each test here mutates one wash task of a known-good plan —
//! dropping it, shifting its window past the end of the assay, or
//! truncating its path to a single cell — and demands a nonempty violation
//! report.

use std::time::Duration;

use pathdriver_wash::{dawo, pdw, PdwConfig, Weights};
use pdw_assay::benchmarks;
use pdw_biochip::FlowPath;
use pdw_sched::{Schedule, TaskId};
use pdw_sim::propagate;
use pdw_synth::synthesize;

fn quick_config() -> PdwConfig {
    PdwConfig {
        ilp_budget: Duration::from_secs(2),
        ..PdwConfig::default()
    }
}

fn greedy_config() -> PdwConfig {
    PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    }
}

fn wash_ids(schedule: &Schedule) -> Vec<TaskId> {
    schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_wash())
        .map(|(id, _)| id)
        .collect()
}

#[test]
fn unmodified_plans_pass_with_zero_violations() {
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap();
        let plans = [
            ("dawo", dawo(&bench, &s).unwrap()),
            ("greedy", pdw(&bench, &s, &greedy_config()).unwrap()),
            ("ilp", pdw(&bench, &s, &quick_config()).unwrap()),
        ];
        for (name, r) in &plans {
            let report = propagate(&s.chip, &bench.graph, &r.schedule);
            assert!(
                report.is_clean(),
                "{}: {name}: oracle flagged a genuine plan: {:?}",
                bench.name,
                report.violations
            );
            assert!(
                report.ineffective_washes.is_empty(),
                "{}: {name}: plan contains ineffective washes",
                bench.name
            );
            // The reported objective must be reproducible from the raw
            // schedule with delta exactly 0.
            let w = Weights::default();
            let remeasured = pdw_sim::Metrics::measure(&bench.graph, &r.schedule);
            let recomputed = w.alpha * remeasured.n_wash as f64
                + w.beta * remeasured.l_wash_mm
                + w.gamma * remeasured.t_assay as f64;
            assert_eq!(
                r.objective(&w),
                recomputed,
                "{}: {name}: objective not bit-identical to schedule remeasure",
                bench.name
            );
        }
    }
}

/// Applies `mutate` to every wash of every bundled benchmark's greedy plan
/// and enforces the oracle's fault-detection contract: every mutation is
/// either *detected* (nonempty violation report) or *provably harmless* —
/// the mutated plan still passes both the oracle and the independent
/// `verify_clean`, meaning the wash was genuinely redundant (its cells are
/// also flushed by another wash's path in time, or overwritten by a
/// same-fluid deposit before their next use). On each benchmark at least
/// one wash must be load-bearing: sabotaging it produces violations.
fn assert_mutation_contract(what: &str, mutate: impl Fn(&mut Schedule, TaskId)) {
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap();
        let p = pdw(&bench, &s, &greedy_config()).unwrap();
        let mut detected = 0usize;
        let washes = wash_ids(&p.schedule);
        for &id in &washes {
            let mut mutated = p.schedule.clone();
            mutate(&mut mutated, id);
            let report = propagate(&s.chip, &bench.graph, &mutated);
            if report.is_clean() {
                pdw_contam::verify_clean(&s.chip, &bench.graph, &mutated).unwrap_or_else(|e| {
                    panic!(
                        "{}: {what} of wash {id} dirtied the plan ({e}) \
                         but the oracle reported nothing",
                        bench.name
                    )
                });
            } else {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "{}: {what} went unnoticed on all {} washes",
            bench.name,
            washes.len()
        );
    }
}

#[test]
fn dropped_wash_is_detected() {
    assert_mutation_contract("drop", |schedule, id| {
        schedule.remove_task(id);
    });
}

#[test]
fn shifted_wash_is_detected() {
    assert_mutation_contract("shift past the horizon", |schedule, id| {
        let horizon = schedule.makespan() + 10;
        schedule.task_mut(id).set_start(horizon);
    });
}

#[test]
fn truncated_wash_path_is_detected() {
    assert_mutation_contract("path truncation", |schedule, id| {
        // A single-port path flushes nothing: no interior cells remain.
        let first = *schedule.task(id).path().iter().next().unwrap();
        schedule
            .task_mut(id)
            .set_path(FlowPath::new(vec![first]).unwrap());
    });
}

#[test]
fn oracle_and_validator_disagree_on_nothing_genuine() {
    // Belt and braces: on genuine plans the first-error validator must also
    // be happy, so the differential harness can require both to pass.
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap();
        let p = pdw(&bench, &s, &greedy_config()).unwrap();
        pdw_sim::validate(&s.chip, &bench.graph, &p.schedule)
            .unwrap_or_else(|e| panic!("{}: validator rejects genuine plan: {e}", bench.name));
        pdw_contam::verify_clean(&s.chip, &bench.graph, &p.schedule)
            .unwrap_or_else(|e| panic!("{}: verify_clean rejects genuine plan: {e}", bench.name));
    }
}
