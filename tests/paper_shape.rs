//! Shape tests against the paper's Table II / Figs. 4–5: PathDriver-Wash
//! must beat or match DAWO on every metric, on every benchmark, and the
//! average improvements must land in the paper's qualitative bands.
//!
//! Absolute numbers differ (our substrate is a reimplemented synthesis flow
//! and solver, not the authors' testbed); what must hold is *who wins and
//! roughly by how much* — see EXPERIMENTS.md.

use std::time::Duration;

use pathdriver_wash::{dawo, pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_sim::Metrics;
use pdw_synth::synthesize;

struct Comparison {
    name: String,
    base: Metrics,
    dawo: Metrics,
    pdw: Metrics,
}

fn run_all() -> Vec<Comparison> {
    let config = PdwConfig {
        ilp_budget: Duration::from_secs(2),
        ..PdwConfig::default()
    };
    benchmarks::suite()
        .iter()
        .map(|bench| {
            let s = synthesize(bench).unwrap();
            let base = Metrics::measure(&bench.graph, &s.schedule);
            let d = dawo(bench, &s).unwrap();
            let p = pdw(bench, &s, &config).unwrap();
            Comparison {
                name: bench.name.clone(),
                base,
                dawo: d.metrics,
                pdw: p.metrics,
            }
        })
        .collect()
}

fn improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old * 100.0
    }
}

#[test]
fn pdw_dominates_dawo_on_every_benchmark() {
    for c in run_all() {
        assert!(
            c.pdw.n_wash <= c.dawo.n_wash,
            "{}: N_wash {} > {}",
            c.name,
            c.pdw.n_wash,
            c.dawo.n_wash
        );
        assert!(
            c.pdw.l_wash_mm <= c.dawo.l_wash_mm,
            "{}: L_wash {} > {}",
            c.name,
            c.pdw.l_wash_mm,
            c.dawo.l_wash_mm
        );
        assert!(
            c.pdw.t_assay <= c.dawo.t_assay,
            "{}: T_assay {} > {}",
            c.name,
            c.pdw.t_assay,
            c.dawo.t_assay
        );
        assert!(
            c.pdw.total_wash_time <= c.dawo.total_wash_time,
            "{}: total wash time {} > {}",
            c.name,
            c.pdw.total_wash_time,
            c.dawo.total_wash_time
        );
        assert!(
            c.pdw.avg_wait <= c.dawo.avg_wait + 1e-9,
            "{}: avg wait {} > {}",
            c.name,
            c.pdw.avg_wait,
            c.dawo.avg_wait
        );
    }
}

#[test]
fn average_improvements_land_in_the_papers_bands() {
    // Paper averages: N_wash 17.73 %, L_wash 24.56 %, T_delay 33.10 %,
    // T_assay 9.28 %. We require the same ordering of effect sizes at
    // meaningful magnitude, with generous tolerances.
    let all = run_all();
    let n = all.len() as f64;
    let avg = |f: &dyn Fn(&Comparison) -> f64| all.iter().map(f).sum::<f64>() / n;

    let n_wash = avg(&|c| improvement(c.dawo.n_wash as f64, c.pdw.n_wash as f64));
    let l_wash = avg(&|c| improvement(c.dawo.l_wash_mm, c.pdw.l_wash_mm));
    let t_delay = avg(&|c| {
        improvement(
            c.dawo.delay_vs(&c.base) as f64,
            c.pdw.delay_vs(&c.base) as f64,
        )
    });
    let t_assay = avg(&|c| improvement(c.dawo.t_assay as f64, c.pdw.t_assay as f64));

    eprintln!(
        "averages: N_wash {n_wash:.2}% (paper 17.73), L_wash {l_wash:.2}% (paper 24.56), \
         T_delay {t_delay:.2}% (paper 33.10), T_assay {t_assay:.2}% (paper 9.28)"
    );
    assert!(n_wash >= 5.0, "N_wash improvement {n_wash:.2}% too small");
    assert!(l_wash >= 8.0, "L_wash improvement {l_wash:.2}% too small");
    assert!(
        t_delay >= 10.0,
        "T_delay improvement {t_delay:.2}% too small"
    );
    assert!(
        t_assay >= 2.0,
        "T_assay improvement {t_assay:.2}% too small"
    );
}

#[test]
fn wash_burden_scales_with_benchmark_size() {
    // Larger assays contaminate more: Synthetic3 (20 ops) must need more
    // washes than PCR (7 ops) under either method — the qualitative trend
    // of Table II's rows.
    let all = run_all();
    let by_name = |n: &str| all.iter().find(|c| c.name == n).expect("benchmark present");
    assert!(by_name("Synthetic3").pdw.n_wash > by_name("PCR").pdw.n_wash);
    assert!(by_name("Synthetic3").dawo.n_wash > by_name("PCR").dawo.n_wash);
}
