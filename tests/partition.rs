//! Integration tests for partitioned planning: edge cases of the cut
//! machinery, stitched-plan cleanliness under injected faults, and the
//! pipeline stats the partition surfaces.

use pathdriver_wash::{plan_partitioned, plan_resilient, PdwConfig, RungKind};
use pdw_assay::benchmarks;
use pdw_biochip::{cut_at, partition, PartitionError};
use pdw_synth::synthesize;

fn config() -> PdwConfig {
    PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    }
}

#[test]
fn cut_through_a_device_footprint_is_a_typed_error() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    // Find a column that severs some device footprint: any column strictly
    // inside a footprint's x-extent.
    let dev = s
        .chip
        .devices()
        .iter()
        .find(|d| {
            let xs: Vec<u16> = d.footprint().iter().map(|c| c.x).collect();
            xs.iter().max() > xs.iter().min()
        })
        .expect("demo has a multi-column device");
    let cut = dev.footprint().iter().map(|c| c.x).max().unwrap();
    match cut_at(&s.chip, &[cut]) {
        Err(PartitionError::CutThroughDevice { column, device }) => {
            assert_eq!(column, cut);
            assert_eq!(device, dev.label());
        }
        other => panic!("expected CutThroughDevice, got {other:?}"),
    }
}

#[test]
fn oversized_k_clamps_to_the_viable_cuts_and_warns() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    let part = partition(&s.chip, 1000).expect("partition clamps, not fails");
    assert!(part.clamped(), "1000 regions cannot fit the demo grid");
    assert!(part.regions().len() < 1000);
    assert_eq!(part.requested(), 1000);

    // End to end: the plan still serves, and the clamp is surfaced as a
    // degradation event when the partitioned rung wins.
    let outcome = plan_partitioned(&bench, &s, &config(), 1000);
    assert!(outcome.is_served(), "{outcome}");
    let served = outcome.served.as_ref().unwrap();
    if outcome.rung == Some(RungKind::Partitioned) {
        assert!(served.pipeline.partition_clamped);
        assert!(served
            .pipeline
            .degradation_events()
            .contains(&"partition clamped (fewer viable cuts than requested regions)"));
    }
}

#[test]
fn zero_partitions_is_rejected_by_the_cut_machinery() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    assert!(matches!(
        partition(&s.chip, 0),
        Err(PartitionError::NoRegions)
    ));
}

#[test]
fn dead_regions_are_skipped_and_counted() {
    // A mega instance with far fewer operations than bands leaves whole
    // bands without any wash necessity of their own; the pipeline must
    // count them as skipped rather than paying their front end.
    let spec = pdw_gen::mega_spec(65, 4, 1);
    let (bench, s) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
    let outcome = plan_partitioned(&bench, &s, &config(), 4);
    assert!(outcome.is_served(), "{outcome}");
    let served = outcome.served.as_ref().unwrap();
    assert_eq!(outcome.rung, Some(RungKind::Partitioned));
    assert!(
        served.pipeline.regions_skipped > 0,
        "4 ops on a 65x65 4-band grid should leave a dead band, got stats {:?}",
        served.pipeline
    );
    assert!(served.pipeline.regions_skipped <= served.pipeline.partition_regions);
}

#[test]
fn stitched_mega_plans_with_injected_faults_stay_oracle_clean() {
    // The stitch invariant under chip faults: region views inherit the
    // parent's fault set, the rung gate re-validates fault-aware, and the
    // contamination oracle must find the stitched plan clean.
    for seed in [1u64, 2] {
        let spec = pdw_gen::mega_spec(65, 12, seed);
        let (bench, pristine) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
        let s = pdw_gen::inject_faults(&pristine, seed);
        let outcome = plan_partitioned(&bench, &s, &config(), 4);
        assert!(outcome.is_served(), "seed {seed}: {outcome}");
        let served = outcome.served.as_ref().unwrap();
        pdw_sim::validate(&s.chip, &bench.graph, &served.schedule)
            .unwrap_or_else(|e| panic!("seed {seed}: stitched plan invalid: {e}"));
        let report = pdw_sim::propagate(&s.chip, &bench.graph, &served.schedule);
        assert!(
            report.is_clean(),
            "seed {seed}: contamination in stitched plan: {:?}",
            report.violations
        );
    }
}

#[test]
fn partitioned_matches_whole_chip_when_the_rung_is_beaten() {
    // Whatever rung serves, a partitioned call must never produce a plan
    // that fails the oracle where plan_resilient's would pass — both gates
    // are the same validator + oracle pair.
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    let part = plan_partitioned(&bench, &s, &config(), 3);
    let whole = plan_resilient(&bench, &s, &config());
    assert!(part.is_served() && whole.is_served());
    let p = part.served.as_ref().unwrap();
    pdw_sim::validate(&s.chip, &bench.graph, &p.schedule).expect("partitioned plan validates");
    assert!(pdw_sim::propagate(&s.chip, &bench.graph, &p.schedule).is_clean());
}
