//! End-to-end pipeline tests: every benchmark flows through synthesis,
//! contamination analysis, DAWO, and PDW; every produced schedule is
//! physically valid and contamination-free.

use std::time::Duration;

use pathdriver_wash::{dawo, pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_contam::verify_clean;
use pdw_sim::{validate, Metrics};
use pdw_synth::synthesize;

fn quick_config() -> PdwConfig {
    PdwConfig {
        ilp_budget: Duration::from_secs(2),
        ..PdwConfig::default()
    }
}

#[test]
fn every_benchmark_runs_end_to_end() {
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap_or_else(|e| panic!("{}: synthesis: {e}", bench.name));
        validate(&s.chip, &bench.graph, &s.schedule)
            .unwrap_or_else(|e| panic!("{}: base invalid: {e}", bench.name));

        let d = dawo(&bench, &s).unwrap_or_else(|e| panic!("{}: dawo: {e}", bench.name));
        let p =
            pdw(&bench, &s, &quick_config()).unwrap_or_else(|e| panic!("{}: pdw: {e}", bench.name));

        for (name, r) in [("dawo", &d), ("pdw", &p)] {
            validate(&s.chip, &bench.graph, &r.schedule)
                .unwrap_or_else(|e| panic!("{}: {name} invalid: {e}", bench.name));
            verify_clean(&s.chip, &bench.graph, &r.schedule)
                .unwrap_or_else(|e| panic!("{}: {name} dirty: {e}", bench.name));
            assert!(
                r.metrics.n_wash > 0,
                "{}: {name} washed nothing",
                bench.name
            );
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let bench = benchmarks::pcr();
    let s1 = synthesize(&bench).unwrap();
    let s2 = synthesize(&bench).unwrap();
    assert_eq!(s1.schedule, s2.schedule, "synthesis must be deterministic");

    let config = PdwConfig {
        ilp: false, // the ILP is budget-bound and may differ run to run
        ..quick_config()
    };
    let p1 = pdw(&bench, &s1, &config).unwrap();
    let p2 = pdw(&bench, &s2, &config).unwrap();
    assert_eq!(
        p1.schedule, p2.schedule,
        "greedy optimization must be deterministic"
    );
}

#[test]
fn wash_metrics_are_consistent_with_schedules() {
    let bench = benchmarks::ivd();
    let s = synthesize(&bench).unwrap();
    let p = pdw(&bench, &s, &quick_config()).unwrap();
    let remeasured = Metrics::measure(&bench.graph, &p.schedule);
    assert_eq!(p.metrics, remeasured);
    let washes = p
        .schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_wash())
        .count();
    assert_eq!(p.metrics.n_wash, washes);
}

#[test]
fn optimization_never_loses_operations_or_deliveries() {
    let bench = benchmarks::protein_split();
    let s = synthesize(&bench).unwrap();
    let p = pdw(&bench, &s, &quick_config()).unwrap();
    assert_eq!(p.schedule.ops().len(), bench.graph.ops().len());
    let deliveries = |sched: &pdw_sched::Schedule| {
        sched
            .tasks()
            .filter(|(_, t)| t.kind().is_delivery())
            .count()
    };
    assert_eq!(deliveries(&p.schedule), deliveries(&s.schedule));
}
