//! Property test: the full pipeline stays correct on randomly generated
//! assays, not just the curated suite.
//!
//! The instance family lives in [`pdw_gen`] so this test, the `pdw verify`
//! subcommand, and the corpus `verify` binary all draw from the same
//! distribution — a failure here is reproducible with
//! `pdw verify --seed <s>` and shrinkable with [`pdw_gen::shrink`].

use proptest::prelude::*;

use pathdriver_wash::verify::objective_of;
use pathdriver_wash::{dawo, pdw, PdwConfig, Weights};
use pdw_contam::verify_clean;
use pdw_gen::{instance, spec_strategy, Skip};
use pdw_sim::{propagate, validate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthesis output is always physically valid, and both optimizers
    /// always produce valid, contamination-free schedules that the baseline
    /// never beats on wash count.
    #[test]
    fn pipeline_correct_on_random_assays(spec in spec_strategy()) {
        let (bench, s) = match instance(&spec) {
            Ok(pair) => pair,
            // Heavily chained assays on a minimal device library can exceed
            // what list scheduling without result relocation supports; such
            // under-provisioned instances are rejected rather than counted
            // as failures.
            Err(Skip::Deadlock(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            // At the family's default 15x15 grid every spec must fit its
            // device library; anything else is a generator regression.
            Err(Skip::Infeasible(e)) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "synthesis: {e}"
                )))
            }
        };
        validate(&s.chip, &bench.graph, &s.schedule).expect("base schedule valid");

        let config = PdwConfig { ilp: false, ..PdwConfig::default() };
        let d = dawo(&bench, &s).expect("dawo succeeds");
        let p = pdw(&bench, &s, &config).expect("pdw succeeds");
        validate(&s.chip, &bench.graph, &d.schedule).expect("dawo valid");
        validate(&s.chip, &bench.graph, &p.schedule).expect("pdw valid");
        verify_clean(&s.chip, &bench.graph, &d.schedule).expect("dawo clean");
        verify_clean(&s.chip, &bench.graph, &p.schedule).expect("pdw clean");
        // The independent contamination-propagation oracle must agree.
        let oracle = propagate(&s.chip, &bench.graph, &p.schedule);
        prop_assert!(oracle.is_clean(), "oracle: {:?}", oracle.violations);
        // Reported objectives must be bit-identical to a recompute from the
        // raw schedule.
        let w = Weights::default();
        prop_assert!(p.objective(&w) == objective_of(&p.schedule, &w));
        prop_assert!(d.objective(&w) == objective_of(&d.schedule, &w));
        // On arbitrary random assays strict per-metric dominance is not
        // guaranteed (PDW's sparser requirement set can split into one more
        // — much shorter — wash than the baseline's contiguous stretch);
        // the paper's objective must still never be worse. Strict
        // per-metric dominance on the curated suite is asserted in
        // `paper_shape.rs`.
        let d_obj = objective_of(&d.schedule, &w);
        prop_assert!(
            p.objective(&w) <= d_obj * 1.05 + 1e-6,
            "pdw objective {} worse than dawo {}",
            p.objective(&w),
            d_obj
        );
    }
}
