//! Property test: the full pipeline stays correct on randomly generated
//! assays, not just the curated suite.
//!
//! The instance family lives in [`pdw_gen`] so this test, the `pdw verify`
//! subcommand, and the corpus `verify` binary all draw from the same
//! distribution — a failure here is reproducible with
//! `pdw verify --seed <s>` and shrinkable with [`pdw_gen::shrink`].

use proptest::prelude::*;

use pathdriver_wash::verify::objective_of;
use pathdriver_wash::{
    dawo, pdw, DawoPlanner, GreedyPlanner, PdwConfig, PdwPlanner, PlanContext, Planner, Weights,
};
use pdw_contam::verify_clean;
use pdw_gen::{instance, spec_strategy, Skip};
use pdw_sim::{propagate, validate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthesis output is always physically valid, and both optimizers
    /// always produce valid, contamination-free schedules that the baseline
    /// never beats on wash count.
    #[test]
    fn pipeline_correct_on_random_assays(spec in spec_strategy()) {
        let (bench, s) = match instance(&spec) {
            Ok(pair) => pair,
            // Heavily chained assays on a minimal device library can exceed
            // what list scheduling without result relocation supports; such
            // under-provisioned instances are rejected rather than counted
            // as failures.
            Err(Skip::Deadlock(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            // At the family's default 15x15 grid every spec must fit its
            // device library; anything else is a generator regression.
            Err(Skip::Infeasible(e)) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "synthesis: {e}"
                )))
            }
        };
        validate(&s.chip, &bench.graph, &s.schedule).expect("base schedule valid");

        let config = PdwConfig { ilp: false, ..PdwConfig::default() };
        let d = dawo(&bench, &s).expect("dawo succeeds");
        let p = pdw(&bench, &s, &config).expect("pdw succeeds");
        validate(&s.chip, &bench.graph, &d.schedule).expect("dawo valid");
        validate(&s.chip, &bench.graph, &p.schedule).expect("pdw valid");
        verify_clean(&s.chip, &bench.graph, &d.schedule).expect("dawo clean");
        verify_clean(&s.chip, &bench.graph, &p.schedule).expect("pdw clean");
        // The independent contamination-propagation oracle must agree.
        let oracle = propagate(&s.chip, &bench.graph, &p.schedule);
        prop_assert!(oracle.is_clean(), "oracle: {:?}", oracle.violations);
        // Reported objectives must be bit-identical to a recompute from the
        // raw schedule.
        let w = Weights::default();
        prop_assert!(p.objective(&w) == objective_of(&p.schedule, &w));
        prop_assert!(d.objective(&w) == objective_of(&d.schedule, &w));
        // On arbitrary random assays strict per-metric dominance is not
        // guaranteed (PDW's sparser requirement set can split into one more
        // — much shorter — wash than the baseline's contiguous stretch);
        // the paper's objective must still never be worse. Strict
        // per-metric dominance on the curated suite is asserted in
        // `paper_shape.rs`.
        let d_obj = objective_of(&d.schedule, &w);
        prop_assert!(
            p.objective(&w) <= d_obj * 1.05 + 1e-6,
            "pdw objective {} worse than dawo {}",
            p.objective(&w),
            d_obj
        );
    }

    /// Planner parity on the same random-instance family: every planner's
    /// schedule passes the validator, the cleanliness check, and the
    /// independent contamination-propagation oracle; the full pipeline never
    /// worsens the greedy objective; and a shared (warm) `PlanContext`
    /// reproduces cold one-shot calls bit for bit.
    #[test]
    fn planners_agree_on_random_assays(spec in spec_strategy()) {
        let (bench, s) = match instance(&spec) {
            Ok(pair) => pair,
            Err(Skip::Deadlock(_)) => {
                prop_assume!(false);
                unreachable!()
            }
            Err(Skip::Infeasible(e)) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "synthesis: {e}"
                )))
            }
        };

        let greedy_config = PdwConfig { ilp: false, ..PdwConfig::default() };
        // Tiny ILP budget keeps the corpus fast; the adoption gate makes
        // "never worse than greedy" hold at any budget.
        let full_config = PdwConfig {
            ilp_budget: std::time::Duration::from_millis(100),
            ..PdwConfig::default()
        };
        let mut ctx = PlanContext::new(&bench, &s);
        let d = DawoPlanner.plan(&mut ctx).expect("dawo planner succeeds");
        let g = GreedyPlanner::new(greedy_config.clone())
            .plan(&mut ctx)
            .expect("greedy planner succeeds");
        let p = PdwPlanner::new(full_config)
            .plan(&mut ctx)
            .expect("pdw planner succeeds");

        for (name, r) in [("dawo", &d), ("greedy", &g), ("pdw", &p)] {
            validate(&s.chip, &bench.graph, &r.schedule)
                .unwrap_or_else(|e| panic!("{name}: invalid: {e}"));
            verify_clean(&s.chip, &bench.graph, &r.schedule)
                .unwrap_or_else(|e| panic!("{name}: dirty: {e}"));
            let oracle = propagate(&s.chip, &bench.graph, &r.schedule);
            prop_assert!(oracle.is_clean(), "{}: oracle: {:?}", name, oracle.violations);
        }

        // The ILP adoption gate guarantees the full pipeline never regresses
        // the greedy objective, whatever its budget produced.
        let w = Weights::default();
        prop_assert!(
            p.objective(&w) <= g.objective(&w) + 1e-9,
            "pdw objective {} exceeds greedy {}",
            p.objective(&w),
            g.objective(&w)
        );

        // Context warmth must not leak into results: the deterministic
        // planners reproduce cold one-shot calls exactly.
        let cold_d = dawo(&bench, &s).expect("cold dawo succeeds");
        let cold_g = pdw(&bench, &s, &greedy_config).expect("cold pdw succeeds");
        prop_assert_eq!(&d.schedule, &cold_d.schedule);
        prop_assert_eq!(&d.metrics, &cold_d.metrics);
        prop_assert_eq!(&g.schedule, &cold_g.schedule);
        prop_assert_eq!(&g.metrics, &cold_g.metrics);
    }
}
