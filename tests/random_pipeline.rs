//! Property test: the full pipeline stays correct on randomly generated
//! assays, not just the curated suite.

use proptest::prelude::*;

use pathdriver_wash::{dawo, pdw, PdwConfig, Weights};
use pdw_assay::synthetic::{generate, SyntheticSpec};
use pdw_contam::verify_clean;
use pdw_sim::validate;
use pdw_synth::synthesize;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (4usize..=10, 0usize..=4, 6usize..=9, any::<u64>()).prop_map(|(ops, extra, devices, seed)| {
        // |E| = |O| + mixes + extra inputs + sinks; keep it feasible around
        // the generator's structural family.
        SyntheticSpec {
            name: format!("prop-{seed:x}"),
            ops,
            edges: 2 * ops - ops / 2 + extra,
            devices,
            seed,
            grid: (15, 15),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Synthesis output is always physically valid, and both optimizers
    /// always produce valid, contamination-free schedules that the baseline
    /// never beats on wash count.
    #[test]
    fn pipeline_correct_on_random_assays(spec in spec_strategy()) {
        let bench = generate(&spec);
        // Heavily chained assays on a minimal device library can exceed what
        // list scheduling without result relocation supports (see
        // `SynthError::Deadlock`); such under-provisioned instances are
        // rejected rather than counted as failures.
        let s = match synthesize(&bench) {
            Ok(s) => s,
            Err(pdw_synth::SynthError::Deadlock { .. }) => {
                prop_assume!(false);
                unreachable!()
            }
            Err(e) => {
                return Err(proptest::test_runner::TestCaseError::fail(format!(
                    "synthesis: {e}"
                )))
            }
        };
        validate(&s.chip, &bench.graph, &s.schedule).expect("base schedule valid");

        let config = PdwConfig { ilp: false, ..PdwConfig::default() };
        let d = dawo(&bench, &s).expect("dawo succeeds");
        let p = pdw(&bench, &s, &config).expect("pdw succeeds");
        validate(&s.chip, &bench.graph, &d.schedule).expect("dawo valid");
        validate(&s.chip, &bench.graph, &p.schedule).expect("pdw valid");
        verify_clean(&s.chip, &bench.graph, &d.schedule).expect("dawo clean");
        verify_clean(&s.chip, &bench.graph, &p.schedule).expect("pdw clean");
        // On arbitrary random assays strict per-metric dominance is not
        // guaranteed (PDW's sparser requirement set can split into one more
        // — much shorter — wash than the baseline's contiguous stretch);
        // the paper's objective must still never be worse. Strict
        // per-metric dominance on the curated suite is asserted in
        // `paper_shape.rs`.
        let w = Weights::default();
        let d_obj = w.alpha * d.metrics.n_wash as f64
            + w.beta * d.metrics.l_wash_mm
            + w.gamma * d.metrics.t_assay as f64;
        prop_assert!(
            p.objective(&w) <= d_obj * 1.05 + 1e-6,
            "pdw objective {} worse than dawo {}",
            p.objective(&w),
            d_obj
        );
    }
}
