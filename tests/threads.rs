//! Thread-count invariance of the parallel front end.
//!
//! The candidate-enumeration fan-out (`build_groups` /
//! `split_into_spot_clusters`) distributes work over scoped workers but
//! merges results in input order, so the groups — and everything downstream
//! of them: placements and the final objective — must be bit-identical at
//! any thread count.

use pathdriver_wash::{
    build_groups, dawo, pdw, plan_batch, plan_partitioned, plan_resilient,
    split_into_spot_clusters, CandidatePolicy, DawoPlanner, GreedyPlanner, PdwConfig, PlanContext,
    Planner, WashGroup,
};
use pdw_assay::benchmarks;
use pdw_contam::{analyze, NecessityOptions};
use pdw_synth::synthesize;

fn front_end_groups(bench: &pdw_assay::benchmarks::Benchmark, threads: usize) -> Vec<WashGroup> {
    let s = synthesize(bench).expect("benchmark synthesizes");
    let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
    let groups = build_groups(
        &s.chip,
        &s.schedule,
        &a.requirements,
        CandidatePolicy::Shortest,
        3,
        threads,
    );
    split_into_spot_clusters(
        &s.chip,
        &s.schedule,
        groups,
        4,
        CandidatePolicy::Shortest,
        3,
        threads,
    )
}

/// `WashGroup` carries no `PartialEq`; compare the fields that matter.
fn assert_same_groups(a: &[WashGroup], b: &[WashGroup], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: group count differs");
    for (i, (ga, gb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ga.parts, gb.parts, "{ctx}: group {i} parts differ");
        assert_eq!(
            ga.candidates, gb.candidates,
            "{ctx}: group {i} candidates differ"
        );
    }
}

#[test]
fn candidates_are_identical_at_any_thread_count_on_every_benchmark() {
    for bench in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        let serial = front_end_groups(&bench, 1);
        for threads in [2, 8] {
            let par = front_end_groups(&bench, threads);
            assert_same_groups(
                &serial,
                &par,
                &format!("{} at {threads} threads", bench.name),
            );
        }
    }
}

#[test]
fn placements_and_objective_are_thread_count_invariant() {
    // Full pipeline (ILP off keeps the suite fast; the solver is already
    // thread-invariant by its own tests) on every bundled benchmark.
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).expect("benchmark synthesizes");
        let mut results = Vec::new();
        for threads in [1, 2, 8] {
            let config = PdwConfig {
                ilp: false,
                threads,
                ..PdwConfig::default()
            };
            let r = pdw(&bench, &s, &config).expect("pdw runs");
            results.push((threads, r));
        }
        let (_, first) = &results[0];
        for (threads, r) in &results[1..] {
            assert_eq!(
                r.metrics, first.metrics,
                "{}: metrics differ at {threads} threads",
                bench.name
            );
            assert_eq!(
                r.schedule, first.schedule,
                "{}: schedule differs at {threads} threads",
                bench.name
            );
        }
    }
}

#[test]
fn shared_context_results_match_cold_calls_on_every_benchmark() {
    // Context warmth must never change a plan: running DAWO and the greedy
    // pipeline (twice) through one PlanContext has to reproduce the cold
    // one-shot calls bit for bit on every bundled benchmark.
    let config = PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    };
    for bench in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        let s = synthesize(&bench).expect("benchmark synthesizes");
        let cold_d = dawo(&bench, &s).expect("dawo runs");
        let cold_g = pdw(&bench, &s, &config).expect("pdw runs");

        let mut ctx = PlanContext::new(&bench, &s);
        let warm_d = DawoPlanner.plan(&mut ctx).expect("dawo planner runs");
        let warm_g = GreedyPlanner::new(config.clone())
            .plan(&mut ctx)
            .expect("greedy planner runs");
        let warm_g2 = GreedyPlanner::new(config.clone())
            .plan(&mut ctx)
            .expect("greedy planner re-runs");

        assert_eq!(warm_d.schedule, cold_d.schedule, "{}: dawo", bench.name);
        assert_eq!(warm_d.metrics, cold_d.metrics, "{}: dawo", bench.name);
        assert_eq!(warm_g.schedule, cold_g.schedule, "{}: greedy", bench.name);
        assert_eq!(warm_g.metrics, cold_g.metrics, "{}: greedy", bench.name);
        assert_eq!(
            warm_g2.schedule, cold_g.schedule,
            "{}: greedy on a fully warm context",
            bench.name
        );
    }
}

#[test]
fn plan_batch_is_thread_count_invariant_across_the_suite() {
    // The batched driver fans instances across workers with per-worker
    // context reuse; output must be bit-identical to cold one-shot calls at
    // every thread count, in input order.
    let config = PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    };
    let owned: Vec<_> = benchmarks::suite()
        .into_iter()
        .chain([benchmarks::demo()])
        .map(|b| {
            let s = synthesize(&b).expect("benchmark synthesizes");
            (b, s)
        })
        .collect();
    let instances: Vec<(&benchmarks::Benchmark, &pdw_synth::Synthesis)> =
        owned.iter().map(|(b, s)| (b, s)).collect();
    let cold: Vec<_> = owned
        .iter()
        .map(|(b, s)| {
            (
                dawo(b, s).expect("dawo runs"),
                pdw(b, s, &config).expect("pdw runs"),
            )
        })
        .collect();

    let greedy = GreedyPlanner::new(config);
    let planners: Vec<&dyn Planner> = vec![&DawoPlanner, &greedy];
    for threads in [1, 2, 8] {
        let batch = plan_batch(&instances, &planners, threads);
        assert_eq!(batch.len(), owned.len());
        for (i, (row, (cold_d, cold_g))) in batch.iter().zip(&cold).enumerate() {
            let name = &owned[i].0.name;
            let d = row[0].as_ref().expect("dawo planner runs");
            let g = row[1].as_ref().expect("greedy planner runs");
            assert_eq!(
                d.schedule, cold_d.schedule,
                "{name}: dawo at {threads} threads"
            );
            assert_eq!(d.metrics, cold_d.metrics, "{name}: dawo metrics");
            assert_eq!(
                g.schedule, cold_g.schedule,
                "{name}: greedy at {threads} threads"
            );
            assert_eq!(g.metrics, cold_g.metrics, "{name}: greedy metrics");
        }
    }
}

#[test]
fn partitioned_k1_is_bit_identical_to_plan_resilient_at_any_thread_count() {
    // `plan_partitioned(.., 1)` must delegate verbatim to the unpartitioned
    // ladder: same rung, same schedule, same metrics — at every thread
    // count, on every bundled benchmark.
    for bench in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        let s = synthesize(&bench).expect("benchmark synthesizes");
        for threads in [1, 2, 8] {
            let config = PdwConfig {
                ilp: false,
                threads,
                ..PdwConfig::default()
            };
            let base = plan_resilient(&bench, &s, &config);
            let part = plan_partitioned(&bench, &s, &config, 1);
            assert_eq!(
                part.rung, base.rung,
                "{}: rung differs at {threads} threads",
                bench.name
            );
            let (b, p) = (
                base.served.as_ref().expect("resilient serves"),
                part.served.as_ref().expect("partitioned k=1 serves"),
            );
            assert_eq!(
                p.schedule, b.schedule,
                "{}: schedule differs at {threads} threads",
                bench.name
            );
            assert_eq!(
                p.metrics, b.metrics,
                "{}: metrics differ at {threads} threads",
                bench.name
            );
        }
    }
}

#[test]
fn full_config_demo_is_thread_count_invariant() {
    // ILP included on the small demo benchmark: the end-to-end objective
    // must not move with the thread knob.
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");
    let run = |threads: usize| {
        let config = PdwConfig {
            threads,
            ..PdwConfig::default()
        };
        pdw(&bench, &s, &config).expect("pdw runs")
    };
    let serial = run(1);
    for threads in [2, 8] {
        let par = run(threads);
        assert_eq!(
            par.metrics, serial.metrics,
            "metrics differ at {threads} threads"
        );
        assert_eq!(
            par.schedule, serial.schedule,
            "schedule differs at {threads} threads"
        );
    }
}
