//! Wash-correctness tests: the semantic guarantees of the optimizers.

use std::time::Duration;

use pathdriver_wash::{dawo, pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_sched::{flow_duration, TaskKind};
use pdw_sim::DISSOLUTION_S;
use pdw_synth::synthesize;

fn quick_config() -> PdwConfig {
    PdwConfig {
        ilp_budget: Duration::from_secs(2),
        ..PdwConfig::default()
    }
}

#[test]
fn washes_cover_their_targets() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).unwrap();
    let p = pdw(&bench, &s, &quick_config()).unwrap();
    for (_, t) in p.schedule.tasks() {
        if let TaskKind::Wash { targets } = t.kind() {
            for cell in targets {
                assert!(t.path().contains(*cell), "wash misses its target {cell}");
            }
        }
    }
}

#[test]
fn washes_are_adequately_long() {
    // Eq. 17/18: duration >= flush (L / v_f) + dissolution time.
    for bench in [benchmarks::demo(), benchmarks::pcr()] {
        let s = synthesize(&bench).unwrap();
        for r in [
            dawo(&bench, &s).unwrap(),
            pdw(&bench, &s, &quick_config()).unwrap(),
        ] {
            for (_, t) in r.schedule.tasks() {
                if t.kind().is_wash() {
                    assert!(t.duration() >= flow_duration(t.path().len()) + DISSOLUTION_S);
                }
            }
        }
    }
}

#[test]
fn wash_paths_are_complete_port_to_port_paths() {
    let bench = benchmarks::synthetic1();
    let s = synthesize(&bench).unwrap();
    let p = pdw(&bench, &s, &quick_config()).unwrap();
    for (_, t) in p.schedule.tasks() {
        if t.kind().is_wash() {
            s.chip
                .validate_path(t.path())
                .unwrap_or_else(|e| panic!("wash path invalid: {e}"));
        }
    }
}

#[test]
fn ablations_stay_correct() {
    // Disabling each technique must never produce an invalid or dirty
    // schedule — only a less efficient one.
    let bench = benchmarks::pcr();
    let s = synthesize(&bench).unwrap();
    let variants = [
        PdwConfig {
            necessity_analysis: false,
            ..quick_config()
        },
        PdwConfig {
            integration: false,
            ..quick_config()
        },
        PdwConfig {
            merging: false,
            ..quick_config()
        },
        PdwConfig {
            ilp: false,
            ..quick_config()
        },
        PdwConfig::naive(),
    ];
    for config in variants {
        let r = pdw(&bench, &s, &config).unwrap();
        pdw_sim::validate(&s.chip, &bench.graph, &r.schedule).unwrap();
        pdw_contam::verify_clean(&s.chip, &bench.graph, &r.schedule).unwrap();
    }
}

#[test]
fn integration_reduces_task_count() {
    // Every integrated removal is one fluidic manipulation saved.
    let bench = benchmarks::demo();
    let s = synthesize(&bench).unwrap();
    let with = pdw(&bench, &s, &quick_config()).unwrap();
    let without = pdw(
        &bench,
        &s,
        &PdwConfig {
            integration: false,
            ..quick_config()
        },
    )
    .unwrap();
    assert_eq!(
        with.schedule.task_count() + with.integrated,
        without.schedule.task_count(),
        "each ψ=1 removal must disappear from the schedule"
    );
}

#[test]
fn necessity_analysis_never_underwashes() {
    // With the full analysis, schedules still pass the cleanliness check on
    // every benchmark (the exemptions are safe, not just aggressive).
    for bench in benchmarks::suite() {
        let s = synthesize(&bench).unwrap();
        let p = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..quick_config()
            },
        )
        .unwrap();
        pdw_contam::verify_clean(&s.chip, &bench.graph, &p.schedule)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    }
}
