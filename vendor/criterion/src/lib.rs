//! Minimal vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Runs each benchmark closure in a simple timed loop and prints a
//! mean-per-iteration line — enough to execute `cargo bench` and eyeball
//! relative performance, without criterion's statistics, plots, or HTML
//! reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.sample_size as u64 || start.elapsed() < self.measurement_time {
            black_box(routine());
            iters += 1;
            if iters >= 1_000_000_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Benchmarks a no-input routine.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        self.report(&id.id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let mean = if b.iters > 0 {
            b.total / (b.iters as u32)
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{:<40} time: {:>12.3?}  ({} iters)",
            self.name, id, mean, b.iters
        );
    }

    /// Ends the group (printing is per-benchmark; nothing left to flush).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let owned = name.to_string();
        self.benchmark_group(owned.clone())
            .bench_function(BenchmarkId::from_parameter(""), routine);
        self
    }
}

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
