//! Minimal vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple and `collection::vec`
//! strategies, `any::<T>()`, the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros, and a deterministic test runner. No shrinking: a failing case
//! reports the generated input as-is. Runs are seeded from the test name, so
//! failures are reproducible across runs and machines.

use std::fmt;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

pub mod test_runner;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// A recipe for generating random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<T: fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds on it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy ([`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Samples a uniform value over the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample(rng)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::Strategy;

    /// A length specification: an exact size or an inclusive span.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `elem`-generated values with a length drawn
    /// from `size` (a `usize`, a `Range`, or a `RangeInclusive`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), l, r
        );
    }};
}

/// Discards the current case (it counts as neither pass nor fail) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
///
/// Each test function takes `name in strategy` arguments; the body runs once
/// per generated case and may use `prop_assert*`/`prop_assume!` or return
/// `Err(TestCaseError)` explicitly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}
