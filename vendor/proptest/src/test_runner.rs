//! The deterministic case runner behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::Strategy;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the test fails.
    Fail(String),
    /// The case was discarded (`prop_assume!`); another is generated.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a reason.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discarded case with a reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to pass.
    pub cases: u32,
    /// Cap on discarded cases before the runner gives up generating.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config that runs `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 4096,
        }
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `test` on `config.cases` generated inputs; panics on the first
/// failing case with the input that produced it. Deterministic: the RNG
/// sequence depends only on the test name and attempt number.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match test(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    eprintln!(
                        "proptest {name}: giving up after {rejected} rejects \
                         ({passed}/{} cases passed)",
                        config.cases
                    );
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case #{} failed (attempt {attempt}, seed {seed:#x})\n\
                     input: {shown}\n{msg}",
                    passed + 1
                );
            }
        }
    }
}
