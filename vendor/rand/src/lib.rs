//! Minimal vendored stand-in for `rand` (see `vendor/README.md`).
//!
//! Provides `StdRng` (a SplitMix64 generator — statistically sound for test
//! and synthetic-data generation, NOT cryptographic), `SeedableRng`, and a
//! `Rng::gen_range` over integer `Range`/`RangeInclusive` bounds — the
//! surface the workspace uses.

/// Generators seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface over a raw `u64` source.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a range, e.g. `rng.gen_range(2..=5)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Generates a uniformly random value of an [`Arbitrary`] type.
    fn gen<T: Arbitrary>(&mut self) -> T
    where
        Self: Sized,
    {
        T::arbitrary(self)
    }
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Arbitrary {
    /// Samples a uniform value.
    fn arbitrary<R: Rng>(rng: &mut R) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a `T` can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Samples one value; panics on an empty range (matching `rand`).
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Zone rejection: accept only below the largest multiple of n.
    let zone = u64::MAX - (u64::MAX % n) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64.
    ///
    /// Full 64-bit period, passes standard statistical batteries, and is
    /// trivially seedable — appropriate for synthetic data and tests (the
    /// only uses in this workspace), not for cryptography.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(2..=5);
            assert!((2..=5).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x = rng.gen_range(-6i32..=10);
            assert!((-6..=10).contains(&x));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
