//! Minimal vendored stand-in for `serde`, providing the API surface this
//! workspace uses (see `vendor/README.md` for scope and rationale).
//!
//! Unlike real serde's visitor architecture, this implementation routes
//! everything through an owned [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` reads one back out. The derive macros in
//! `serde_derive` generate `to_value`/`from_value` impls against these
//! traits, and `serde_json` converts between `Value` and JSON text.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `Int`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// A type reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` back out of the serde data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: looks up a named field in an object and deserializes
/// it, reporting missing fields by name.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => {
            // A missing field is still valid for optional values (older
            // payloads may simply omit them): represent it as null.
            T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v)
                }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i64)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i64)),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn value_as_i128(v: &Value) -> Option<i128> {
    match v {
        Value::Int(i) => Some(*i as i128),
        Value::UInt(u) => Some(*u as i128),
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
        _ => None,
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = value_as_i128(v)
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN), // non-finite floats serialize as null
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected duration object, got {v:?}")))?;
        let secs: u64 = field(obj, "secs")?;
        let nanos: u32 = field(obj, "nanos")?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
