//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored `serde`.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — the build
//! environment is offline) and emits impls of the vendored `serde::Serialize`
//! / `serde::Deserialize` traits, which are value-tree based rather than
//! visitor based. Supports the shapes this workspace uses:
//!
//! - named-field structs (including lifetime-generic ones),
//! - tuple structs (newtype and wider),
//! - unit structs,
//! - enums with unit, tuple, and named-field variants.
//!
//! Field attributes are ignored; `#[serde(...)]` customization is not
//! supported (and not used in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    body: Body,
}

#[derive(Debug)]
struct Input {
    name: String,
    /// Raw generics text, e.g. `<'a>`; empty when non-generic.
    generics: String,
    is_enum: bool,
    body: Body,             // for structs
    variants: Vec<Variant>, // for enums
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advances past any `#[...]` attributes starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() && is_punct(&toks[i], '#') {
        if matches!(&toks[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket) {
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Advances past `pub`, `pub(...)`, or nothing.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if i < toks.len()
            && matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Counts top-level (angle-depth-0) comma-separated items in a token list.
fn count_fields(toks: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut seen_any = false;
    for t in toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                seen_any = false;
                continue;
            }
            _ => {}
        }
        seen_any = true;
    }
    if seen_any {
        count += 1;
    }
    count
}

/// Parses named fields out of a brace-group token list: returns field names.
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        i = skip_vis(toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected field name, got {:?}", toks[i]);
        };
        names.push(name.to_string());
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type: everything up to a top-level comma.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

fn parse_variants(toks: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        i = skip_attrs(toks, i);
        if i >= toks.len() {
            break;
        }
        let TokenTree::Ident(name) = &toks[i] else {
            panic!("serde_derive: expected variant name, got {:?}", toks[i]);
        };
        let name = name.to_string();
        i += 1;
        let body = if i < toks.len() {
            match &toks[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Body::Tuple(count_fields(&inner))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    i += 1;
                    Body::Named(parse_named_fields(&inner))
                }
                _ => Body::Unit,
            }
        } else {
            Body::Unit
        };
        variants.push(Variant { name, body });
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "serde_derive: expected `,` after variant"
            );
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "serde_derive: expected `struct` or `enum`, got {:?}",
            toks[i]
        );
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    // Generics (lifetimes only in this workspace): copy tokens verbatim.
    let mut generics = String::new();
    if i < toks.len() && is_punct(&toks[i], '<') {
        let mut depth = 0i32;
        loop {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            generics.push_str(&toks[i].to_string());
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }
    if is_enum {
        let TokenTree::Group(g) = &toks[i] else {
            panic!("serde_derive: expected enum body");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        return Input {
            name,
            generics,
            is_enum,
            body: Body::Unit,
            variants: parse_variants(&inner),
        };
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Named(parse_named_fields(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Tuple(count_fields(&inner))
        }
        Some(t) if is_punct(t, ';') => Body::Unit,
        other => panic!("serde_derive: unexpected struct body {other:?}"),
    };
    Input {
        name,
        generics,
        is_enum,
        body,
        variants: Vec::new(),
    }
}

fn impl_header(input: &Input, trait_name: &str) -> String {
    if input.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} {{", input.name)
    } else {
        format!(
            "impl{g} ::serde::{trait_name} for {}{g} {{",
            input.name,
            g = input.generics
        )
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let mut out = String::new();
    out.push_str(&impl_header(&input, "Serialize"));
    out.push_str("fn to_value(&self) -> ::serde::Value {");
    if input.is_enum {
        out.push_str("match self {");
        for v in &input.variants {
            let full = format!("{}::{}", input.name, v.name);
            match &v.body {
                Body::Unit => out.push_str(&format!(
                    "{full} => ::serde::Value::Str(\"{}\".to_string()),",
                    v.name
                )),
                Body::Tuple(1) => out.push_str(&format!(
                    "{full}(f0) => ::serde::Value::Object(vec![(\"{}\".to_string(), \
                     ::serde::Serialize::to_value(f0))]),",
                    v.name
                )),
                Body::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                    let elems: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    out.push_str(&format!(
                        "{full}({}) => ::serde::Value::Object(vec![(\"{}\".to_string(), \
                         ::serde::Value::Array(vec![{}]))]),",
                        binders.join(","),
                        v.name,
                        elems.join(",")
                    ));
                }
                Body::Named(fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    out.push_str(&format!(
                        "{full} {{ {} }} => ::serde::Value::Object(vec![(\"{}\".to_string(), \
                         ::serde::Value::Object(vec![{}]))]),",
                        fields.join(","),
                        v.name,
                        pairs.join(",")
                    ));
                }
            }
        }
        out.push('}');
    } else {
        match &input.body {
            Body::Named(fields) => {
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                out.push_str(&format!(
                    "::serde::Value::Object(vec![{}])",
                    pairs.join(",")
                ));
            }
            Body::Tuple(1) => out.push_str("::serde::Serialize::to_value(&self.0)"),
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                out.push_str(&format!("::serde::Value::Array(vec![{}])", elems.join(",")));
            }
            Body::Unit => out.push_str("::serde::Value::Null"),
        }
    }
    out.push_str("}}");
    out.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let mut out = String::new();
    out.push_str(&impl_header(&input, "Deserialize"));
    out.push_str(
        "fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {",
    );
    if input.is_enum {
        out.push_str("match v {");
        // Unit variants arrive as plain strings.
        out.push_str("::serde::Value::Str(s) => match s.as_str() {");
        for v in input
            .variants
            .iter()
            .filter(|v| matches!(v.body, Body::Unit))
        {
            out.push_str(&format!("\"{0}\" => Ok({name}::{0}),", v.name));
        }
        out.push_str(&format!(
            "other => Err(::serde::Error::custom(format!(\
             \"unknown unit variant `{{other}}` for {name}\"))),"
        ));
        out.push_str("},");
        // Data variants arrive as single-key objects.
        out.push_str(
            "::serde::Value::Object(o) if o.len() == 1 => { \
             let (k, inner) = &o[0]; match k.as_str() {",
        );
        for v in &input.variants {
            match &v.body {
                Body::Unit => {}
                Body::Tuple(1) => out.push_str(&format!(
                    "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_value(inner)?)),",
                    v.name
                )),
                Body::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    out.push_str(&format!(
                        "\"{0}\" => {{ let items = inner.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}::{0}\"))?; \
                         if items.len() != {n} {{ return Err(::serde::Error::custom(\
                         \"wrong tuple arity for {name}::{0}\")); }} \
                         Ok({name}::{0}({1})) }},",
                        v.name,
                        elems.join(",")
                    ));
                }
                Body::Named(fields) => {
                    let setters: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                        .collect();
                    out.push_str(&format!(
                        "\"{0}\" => {{ let obj = inner.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}::{0}\"))?; \
                         Ok({name}::{0} {{ {1} }}) }},",
                        v.name,
                        setters.join(",")
                    ));
                }
            }
        }
        out.push_str(&format!(
            "other => Err(::serde::Error::custom(format!(\
             \"unknown variant `{{other}}` for {name}\"))),"
        ));
        out.push_str("}}");
        out.push_str(&format!(
            ", _ => Err(::serde::Error::custom(\"expected string or object for {name}\")),"
        ));
        out.push('}');
    } else {
        match &input.body {
            Body::Named(fields) => {
                let setters: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?"))
                    .collect();
                out.push_str(&format!(
                    "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                     \"expected object for {name}\"))?; Ok({name} {{ {} }})",
                    setters.join(",")
                ));
            }
            Body::Tuple(1) => {
                out.push_str(&format!("Ok({name}(::serde::Deserialize::from_value(v)?))"))
            }
            Body::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                out.push_str(&format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                     \"expected array for {name}\"))?; \
                     if items.len() != {n} {{ return Err(::serde::Error::custom(\
                     \"wrong tuple arity for {name}\")); }} Ok({name}({}))",
                    elems.join(",")
                ));
            }
            Body::Unit => out.push_str(&format!("Ok({name})")),
        }
    }
    out.push_str("}}");
    out.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
