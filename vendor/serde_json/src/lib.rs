//! Minimal vendored stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Converts between the vendored `serde::Value` tree and JSON text:
//! `to_string` / `to_string_pretty` for writing, `from_str` (a small
//! recursive-descent parser) for reading.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

fn err(msg: impl Into<String>) -> Error {
    Error { msg: msg.into() }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // always with a decimal point or exponent (e.g. `1.0`).
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(err(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(err(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(err(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // it came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(format!("invalid number `{text}`")))
    }
}
